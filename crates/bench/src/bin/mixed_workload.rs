//! Mixed append + query workload over a live table (DESIGN.md §16),
//! written to `BENCH_ingest.json`.
//!
//! Concurrent traffic against one [`LiveTable`] and one shared semantic
//! cache: driver threads run distinct-scope queries while the main thread
//! publishes append batches — one before each round and one *while* the
//! round's queries are planning (their version pins make that safe). The
//! record reports:
//!
//! 1. **Cache effectiveness under churn** — warm-hit rate and exact
//!    invalidations when every round makes all cached entries stale.
//! 2. **Repair cost** — rows read by snapshot repairs, which must track
//!    the appended suffix (a few batches), not the table size.
//! 3. **Latency** — cold (empty cache) vs post-append warm p50s.
//!
//! ```text
//! cargo run --release --bin mixed_workload \
//!     [--rows N] [--rounds N] [--batch N] [--drivers N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the run for CI and exits non-zero after writing the
//! record if no snapshot was repaired, a repair read more than its
//! possible suffix, or a stale serve went unmarked on the answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use voxolap_bench::experiments::stream::percentile;
use voxolap_bench::{arg_usize, experiment_holistic, fig3_queries, flights_table, HostInfo};
use voxolap_core::approach::Vocalizer;
use voxolap_core::voice::InstantVoice;
use voxolap_data::schema::MeasureId;
use voxolap_data::{DimId, DimValue, IngestRow, LiveTable, Table};
use voxolap_engine::semantic::SemanticCache;
use voxolap_json::Value;

/// Clone `n` existing rows (cycling from `start`) as an ingest batch, so
/// appends are always valid under the flights schema and create no new
/// dictionary members.
fn echo_rows(table: &Table, start: usize, n: usize) -> Vec<IngestRow> {
    let schema = table.schema();
    (0..n)
        .map(|i| {
            let row = (start + i) % table.row_count();
            IngestRow {
                dims: (0..schema.dimensions().len())
                    .map(|d| {
                        let id = DimId(d as u8);
                        let member = table.member_at(id, row);
                        DimValue::Phrase(schema.dimension(id).member(member).phrase.clone())
                    })
                    .collect(),
                values: (0..schema.measures().len())
                    .map(|m| table.measure_value(MeasureId(m as u8), row))
                    .collect(),
            }
        })
        .collect()
}

/// One driver query: pin the current revision, plan with the shared
/// cache, return (latency_ms, rows_read, marked_stale).
fn run_query(live: &LiveTable, cache: &Arc<SemanticCache>, scope_idx: usize) -> (f64, u64, bool) {
    let table = live.snapshot();
    let (_, query) = fig3_queries(&table).swap_remove(scope_idx);
    let vocalizer = experiment_holistic(42).with_cache(Arc::clone(cache));
    let mut voice = InstantVoice::default();
    let t0 = Instant::now();
    let outcome = vocalizer.vocalize(&table, &query, &mut voice);
    (t0.elapsed().as_secs_f64() * 1e3, outcome.stats.rows_read, outcome.stats.stale)
}

fn dist_json(samples: &[f64]) -> Value {
    Value::obj([
        ("count", samples.len().into()),
        ("p50", percentile(samples, 50.0).into()),
        ("p90", percentile(samples, 90.0).into()),
        ("p99", percentile(samples, 99.0).into()),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = arg_usize("--rows", if smoke { 20_000 } else { 200_000 });
    let rounds = arg_usize("--rounds", if smoke { 3 } else { 6 });
    let batch = arg_usize("--batch", if smoke { 400 } else { 2_000 });
    let host = HostInfo::detect();
    // The first six Figure-3 scopes are the narrow ones (tens of
    // aggregates); one driver thread per scope keeps repairs attributable.
    let drivers = arg_usize("--drivers", host.cores.clamp(2, 6)).clamp(1, 6);
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_ingest.json".to_string())
    };
    eprintln!("mixed_workload: rows={rows} rounds={rounds} batch={batch} drivers={drivers}");

    let base = flights_table(rows);
    let live = LiveTable::new(base.clone());
    let cache = Arc::new(SemanticCache::with_capacity_mb(64));
    let marked_stale = AtomicU64::new(0);

    // ---- Phase 1: cold queries against the empty cache ----------------
    // Run them with the same concurrency as the mixed rounds, so the
    // cold-vs-warm comparison isolates cache state from CPU contention.
    let mut cold_ms = Vec::with_capacity(drivers);
    let mut cold_rows = Vec::with_capacity(drivers);
    let cold_results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let live = &live;
                let cache = &cache;
                s.spawn(move || run_query(live, cache, d))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver")).collect::<Vec<_>>()
    });
    for (ms, rows_read, stale) in cold_results {
        cold_ms.push(ms);
        cold_rows.push(rows_read as f64);
        if stale {
            marked_stale.fetch_add(1, Ordering::Relaxed);
        }
    }
    let cold_p50 = percentile(&cold_ms, 50.0);
    eprintln!("cold: p50 {cold_p50:.1} ms over {drivers} scopes");

    // ---- Phase 2: concurrent append + query rounds ---------------------
    let mut appended_total = 0usize;
    let mut batches = 0usize;
    let mut warm_ms = Vec::with_capacity(rounds * drivers);
    let mut warm_rows = Vec::with_capacity(rounds * drivers);
    let mixed_t0 = Instant::now();
    for round in 0..rounds {
        live.append_rows(&echo_rows(&base, appended_total, batch)).expect("append");
        appended_total += batch;
        batches += 1;
        let mid = echo_rows(&base, appended_total, batch);
        let round_results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..drivers)
                .map(|d| {
                    let live = &live;
                    let cache = &cache;
                    s.spawn(move || run_query(live, cache, d))
                })
                .collect();
            // Publish the next revision while the round's queries plan:
            // their pinned snapshots are unaffected, and the next round
            // repairs across both batches.
            live.append_rows(&mid).expect("mid-round append");
            handles.into_iter().map(|h| h.join().expect("driver")).collect::<Vec<_>>()
        });
        appended_total += batch;
        batches += 1;
        for (ms, rows_read, stale) in round_results {
            warm_ms.push(ms);
            warm_rows.push(rows_read as f64);
            if stale {
                marked_stale.fetch_add(1, Ordering::Relaxed);
            }
        }
        eprintln!(
            "round {round}: table at {} rows (v{}), warm p50 so far {:.1} ms",
            live.snapshot().row_count(),
            live.version(),
            percentile(&warm_ms, 50.0)
        );
    }
    let mixed_s = mixed_t0.elapsed().as_secs_f64();

    // ---- Analysis ------------------------------------------------------
    let stats = cache.stats();
    let queries = (drivers + rounds * drivers) as u64;
    let warm_p50 = percentile(&warm_ms, 50.0);
    let marked = marked_stale.load(Ordering::Relaxed);
    // No faults are injected here, so every stale serve the cache counts
    // must surface as a `stale: true` answer — an unmarked one means a
    // wrong-version exact result was passed off as fresh.
    let unmarked_stale = stats.stale_serves.saturating_sub(marked);
    // A repaired snapshot's donor is at most three batches behind (the
    // previous round's mid-append plus the current round's two), and a
    // repair reads at most its suffix — so per-repair rows must stay
    // bounded by the churn, never the table.
    let max_suffix = (3 * batch) as u64;
    let repair_bounded = stats.repair_rows_read <= stats.snapshot_repairs * max_suffix;
    let avg_repair_rows = stats.repair_rows_read.checked_div(stats.snapshot_repairs).unwrap_or(0);
    eprintln!(
        "cache: {} repairs read {} rows (avg {avg_repair_rows}/repair, suffix cap {max_suffix}), \
         {} warm hits, {} exact invalidations",
        stats.snapshot_repairs, stats.repair_rows_read, stats.warm_hits, stats.exact_invalidations
    );

    let json = Value::obj([
        ("bench", "mixed_workload".into()),
        ("dataset", "flights".into()),
        ("rows", (rows as u64).into()),
        ("smoke", smoke.into()),
        ("host_cores", (host.cores as u64).into()),
        ("host_ram_bytes", host.ram_bytes.into()),
        (
            "workload",
            Value::obj([
                ("drivers", drivers.into()),
                ("rounds", rounds.into()),
                ("batch_rows", batch.into()),
                ("batches", batches.into()),
                ("appended_rows", appended_total.into()),
                ("final_version", live.version().into()),
                ("final_rows", live.snapshot().row_count().into()),
                ("queries", queries.into()),
                ("mixed_s", mixed_s.into()),
            ]),
        ),
        (
            "latency",
            Value::obj([
                ("cold_ms", dist_json(&cold_ms)),
                ("post_append_ms", dist_json(&warm_ms)),
                ("cold_rows_read_p50", percentile(&cold_rows, 50.0).into()),
                ("post_append_rows_read_p50", percentile(&warm_rows, 50.0).into()),
                ("warm_beats_cold", (warm_p50 < cold_p50).into()),
            ]),
        ),
        (
            "cache",
            Value::obj([
                ("exact_hits", stats.exact_hits.into()),
                ("warm_hits", stats.warm_hits.into()),
                ("misses", stats.misses.into()),
                ("warm_hit_rate", (stats.warm_hits as f64 / queries as f64).into()),
                ("exact_invalidations", stats.exact_invalidations.into()),
                ("snapshot_repairs", stats.snapshot_repairs.into()),
                ("repair_rows_read", stats.repair_rows_read.into()),
                ("avg_repair_rows", avg_repair_rows.into()),
                ("repair_suffix_cap_rows", max_suffix.into()),
                ("repair_reads_bounded", repair_bounded.into()),
                ("stale_serves", stats.stale_serves.into()),
                ("marked_stale_answers", marked.into()),
                ("unmarked_stale_answers", unmarked_stale.into()),
            ]),
        ),
    ]);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");

    println!("## Mixed append + query workload ({rows} rows, {rounds} rounds)\n");
    println!("| metric | value |");
    println!("|---|---|");
    println!("| appended rows / batches | {appended_total} / {batches} |");
    println!("| cold p50 | {cold_p50:.1} ms |");
    println!("| post-append warm p50 | {warm_p50:.1} ms |");
    println!("| snapshot repairs | {} |", stats.snapshot_repairs);
    println!("| rows read per repair (avg / cap) | {avg_repair_rows} / {max_suffix} |");
    println!("| exact invalidations | {} |", stats.exact_invalidations);
    println!("| warm hits | {} |", stats.warm_hits);
    println!("| unmarked stale answers | {unmarked_stale} |");

    if smoke {
        let mut failures = Vec::new();
        if stats.snapshot_repairs == 0 {
            failures.push("no snapshot was repaired".to_string());
        }
        if !repair_bounded {
            failures.push(format!(
                "repairs read {} rows over {} repairs, above the {max_suffix}-row suffix cap",
                stats.repair_rows_read, stats.snapshot_repairs
            ));
        }
        if unmarked_stale > 0 {
            failures.push(format!("{unmarked_stale} stale serves were not marked on answers"));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("SMOKE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("smoke ok");
    }
}
