//! Mixed append + query workload over a live table (DESIGN.md §16),
//! written to `BENCH_ingest.json`.
//!
//! Concurrent traffic against one [`LiveTable`] and one shared semantic
//! cache: driver threads run distinct-scope queries while the main thread
//! publishes append batches — one before each round and one *while* the
//! round's queries are planning (their version pins make that safe). The
//! record reports:
//!
//! 1. **Cache effectiveness under churn** — warm-hit rate and exact
//!    invalidations when every round makes all cached entries stale.
//! 2. **Repair cost** — rows read by snapshot repairs, which must track
//!    the appended suffix (a few batches), not the table size.
//! 3. **Latency** — cold (empty cache) vs post-append warm p50s.
//!
//! 4. **Durability overhead** — a wal-on vs wal-off ingest series
//!    (DESIGN.md §17): the same append stream committed through the
//!    write-ahead log (at the header's `fsync_mode`) and straight into
//!    memory, so the record prices what `--data-dir` costs per batch.
//!
//! ```text
//! cargo run --release --bin mixed_workload \
//!     [--rows N] [--rounds N] [--batch N] [--drivers N] [--smoke] [--out PATH]
//!     [--data-dir PATH] [--fsync-mode always|batch|off]
//! ```
//!
//! Appends that fail with a transient WAL error back off and retry under
//! the shared [`RetryPolicy`] (the in-process analog of the server's
//! `503` + `Retry-After`) instead of aborting the run; retries are
//! counted in the record's `ingest` section.
//!
//! `--smoke` shrinks the run for CI and exits non-zero after writing the
//! record if no snapshot was repaired, a repair read more than its
//! possible suffix, or a stale serve went unmarked on the answer.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use voxolap_bench::experiments::stream::percentile;
use voxolap_bench::{arg_usize, experiment_holistic, fig3_queries, flights_table, HostInfo};
use voxolap_core::approach::Vocalizer;
use voxolap_core::voice::InstantVoice;
use voxolap_data::schema::MeasureId;
use voxolap_data::{
    DataError, DimId, DimValue, DurabilityOptions, DurableTable, FsyncMode, IngestRow, LiveTable,
    Table,
};
use voxolap_engine::semantic::SemanticCache;
use voxolap_faults::RetryPolicy;
use voxolap_json::Value;

/// Clone `n` existing rows (cycling from `start`) as an ingest batch, so
/// appends are always valid under the flights schema and create no new
/// dictionary members.
fn echo_rows(table: &Table, start: usize, n: usize) -> Vec<IngestRow> {
    let schema = table.schema();
    (0..n)
        .map(|i| {
            let row = (start + i) % table.row_count();
            IngestRow {
                dims: (0..schema.dimensions().len())
                    .map(|d| {
                        let id = DimId(d as u8);
                        let member = table.member_at(id, row);
                        DimValue::Phrase(schema.dimension(id).member(member).phrase.clone())
                    })
                    .collect(),
                values: (0..schema.measures().len())
                    .map(|m| table.measure_value(MeasureId(m as u8), row))
                    .collect(),
            }
        })
        .collect()
}

/// One driver query: pin the current revision, plan with the shared
/// cache, return (latency_ms, rows_read, marked_stale).
fn run_query(live: &LiveTable, cache: &Arc<SemanticCache>, scope_idx: usize) -> (f64, u64, bool) {
    let table = live.snapshot();
    let (_, query) = fig3_queries(&table).swap_remove(scope_idx);
    let vocalizer = experiment_holistic(42).with_cache(Arc::clone(cache));
    let mut voice = InstantVoice::default();
    let t0 = Instant::now();
    let outcome = vocalizer.vocalize(&table, &query, &mut voice);
    (t0.elapsed().as_secs_f64() * 1e3, outcome.stats.rows_read, outcome.stats.stale)
}

/// The backoff shared with the HTTP bench clients: transient WAL errors
/// are the in-process face of the server's `503` + `Retry-After`.
fn bench_retry_policy() -> RetryPolicy {
    RetryPolicy { max_retries: 4, base: Duration::from_millis(20), cap: Duration::from_millis(250) }
}

/// Append with jittered-backoff retries on transient WAL errors. A
/// poisoned log (failed fsync) keeps erroring, so retries exhaust fast
/// and the error still surfaces.
fn append_with_retry(
    table: &DurableTable,
    rows: &[IngestRow],
    policy: &RetryPolicy,
    token: u64,
    retries: &AtomicU64,
) -> Result<(), DataError> {
    let mut attempt = 0;
    loop {
        match table.append_rows(rows) {
            Err(DataError::Wal { .. }) if attempt < policy.max_retries => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(policy.delay(attempt, token));
                attempt += 1;
            }
            other => return other.map(|_| ()),
        }
    }
}

/// Drive `batches` appends of `batch` rows into `table`, timing each
/// publish; returns (per-append ms samples, wall seconds).
fn drive_ingest(
    table: &DurableTable,
    base: &Table,
    batch: usize,
    batches: usize,
    policy: &RetryPolicy,
    retries: &AtomicU64,
) -> (Vec<f64>, f64) {
    let mut per_append_ms = Vec::with_capacity(batches);
    let t0 = Instant::now();
    for b in 0..batches {
        let rows = echo_rows(base, b * batch, batch);
        let a0 = Instant::now();
        append_with_retry(table, &rows, policy, b as u64, retries).expect("ingest-series append");
        per_append_ms.push(a0.elapsed().as_secs_f64() * 1e3);
    }
    (per_append_ms, t0.elapsed().as_secs_f64())
}

fn ingest_mode_json(per_append_ms: &[f64], wall_s: f64, batch: usize) -> Value {
    let rows = (per_append_ms.len() * batch) as f64;
    Value::obj([
        ("batches", per_append_ms.len().into()),
        ("append_ms", dist_json(per_append_ms)),
        ("rows_per_s", (rows / wall_s).into()),
    ])
}

fn dist_json(samples: &[f64]) -> Value {
    Value::obj([
        ("count", samples.len().into()),
        ("p50", percentile(samples, 50.0).into()),
        ("p90", percentile(samples, 90.0).into()),
        ("p99", percentile(samples, 99.0).into()),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = arg_usize("--rows", if smoke { 20_000 } else { 200_000 });
    let rounds = arg_usize("--rounds", if smoke { 3 } else { 6 });
    let batch = arg_usize("--batch", if smoke { 400 } else { 2_000 });
    let host = HostInfo::detect();
    // The first six Figure-3 scopes are the narrow ones (tens of
    // aggregates); one driver thread per scope keeps repairs attributable.
    let drivers = arg_usize("--drivers", host.cores.clamp(2, 6)).clamp(1, 6);
    let arg_str = |key: &str| {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
    };
    let out = arg_str("--out").unwrap_or_else(|| "BENCH_ingest.json".to_string());
    let fsync_mode = match FsyncMode::parse(arg_str("--fsync-mode").as_deref().unwrap_or("batch")) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let data_dir = arg_str("--data-dir").map(PathBuf::from);
    eprintln!(
        "mixed_workload: rows={rows} rounds={rounds} batch={batch} drivers={drivers} fsync={}",
        fsync_mode.name()
    );

    let base = flights_table(rows);
    let durable = match &data_dir {
        Some(dir) => {
            let options = DurabilityOptions { fsync_mode, ..DurabilityOptions::default() };
            let (durable, recovery) =
                DurableTable::open(base.clone(), dir, options).expect("open data dir");
            eprintln!(
                "durability: data-dir={} recovered version={} ({} wal batches)",
                dir.display(),
                recovery.version,
                recovery.replayed_batches
            );
            durable
        }
        None => DurableTable::memory(base.clone()),
    };
    let live: &LiveTable = durable.live();
    let retry_policy = bench_retry_policy();
    let append_retries = AtomicU64::new(0);
    let cache = Arc::new(SemanticCache::with_capacity_mb(64));
    let marked_stale = AtomicU64::new(0);

    // ---- Phase 1: cold queries against the empty cache ----------------
    // Run them with the same concurrency as the mixed rounds, so the
    // cold-vs-warm comparison isolates cache state from CPU contention.
    let mut cold_ms = Vec::with_capacity(drivers);
    let mut cold_rows = Vec::with_capacity(drivers);
    let cold_results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let live = &live;
                let cache = &cache;
                s.spawn(move || run_query(live, cache, d))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver")).collect::<Vec<_>>()
    });
    for (ms, rows_read, stale) in cold_results {
        cold_ms.push(ms);
        cold_rows.push(rows_read as f64);
        if stale {
            marked_stale.fetch_add(1, Ordering::Relaxed);
        }
    }
    let cold_p50 = percentile(&cold_ms, 50.0);
    eprintln!("cold: p50 {cold_p50:.1} ms over {drivers} scopes");

    // ---- Phase 2: concurrent append + query rounds ---------------------
    let mut appended_total = 0usize;
    let mut batches = 0usize;
    let mut warm_ms = Vec::with_capacity(rounds * drivers);
    let mut warm_rows = Vec::with_capacity(rounds * drivers);
    let mixed_t0 = Instant::now();
    for round in 0..rounds {
        append_with_retry(
            &durable,
            &echo_rows(&base, appended_total, batch),
            &retry_policy,
            round as u64,
            &append_retries,
        )
        .expect("append");
        appended_total += batch;
        batches += 1;
        let mid = echo_rows(&base, appended_total, batch);
        let round_results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..drivers)
                .map(|d| {
                    let live = &live;
                    let cache = &cache;
                    s.spawn(move || run_query(live, cache, d))
                })
                .collect();
            // Publish the next revision while the round's queries plan:
            // their pinned snapshots are unaffected, and the next round
            // repairs across both batches.
            append_with_retry(&durable, &mid, &retry_policy, round as u64, &append_retries)
                .expect("mid-round append");
            handles.into_iter().map(|h| h.join().expect("driver")).collect::<Vec<_>>()
        });
        appended_total += batch;
        batches += 1;
        for (ms, rows_read, stale) in round_results {
            warm_ms.push(ms);
            warm_rows.push(rows_read as f64);
            if stale {
                marked_stale.fetch_add(1, Ordering::Relaxed);
            }
        }
        eprintln!(
            "round {round}: table at {} rows (v{}), warm p50 so far {:.1} ms",
            live.snapshot().row_count(),
            live.version(),
            percentile(&warm_ms, 50.0)
        );
    }
    let mixed_s = mixed_t0.elapsed().as_secs_f64();

    // ---- Phase 3: wal-on vs wal-off ingest series ----------------------
    // The same append stream, once straight into memory and once
    // committed through the WAL at the chosen fsync mode, prices the
    // durability overhead per batch (DESIGN.md §17).
    let series_batches = if smoke { 4 } else { 16 };
    let wal_off_table = DurableTable::memory(base.clone());
    let (off_ms, off_s) =
        drive_ingest(&wal_off_table, &base, batch, series_batches, &retry_policy, &append_retries);
    let series_dir = data_dir
        .as_ref()
        .map(|d| d.join("ingest-series"))
        .unwrap_or_else(|| std::env::temp_dir().join(format!("voxolap-ingest-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&series_dir);
    let wal_on_table = DurableTable::open(
        base.clone(),
        &series_dir,
        DurabilityOptions { fsync_mode, ..DurabilityOptions::default() },
    )
    .expect("open ingest-series dir")
    .0;
    let (on_ms, on_s) =
        drive_ingest(&wal_on_table, &base, batch, series_batches, &retry_policy, &append_retries);
    let wal_bytes = wal_on_table.stats().map(|s| s.wal_bytes).unwrap_or(0);
    let fsyncs = wal_on_table.stats().map(|s| s.fsyncs).unwrap_or(0);
    drop(wal_on_table);
    let _ = std::fs::remove_dir_all(&series_dir);
    let off_p50 = percentile(&off_ms, 50.0);
    let on_p50 = percentile(&on_ms, 50.0);
    eprintln!(
        "ingest series ({series_batches}x{batch} rows): wal-off p50 {off_p50:.2} ms, \
         wal-on[{}] p50 {on_p50:.2} ms ({wal_bytes} wal bytes, {fsyncs} fsyncs)",
        fsync_mode.name()
    );

    // ---- Analysis ------------------------------------------------------
    let stats = cache.stats();
    let queries = (drivers + rounds * drivers) as u64;
    let warm_p50 = percentile(&warm_ms, 50.0);
    let marked = marked_stale.load(Ordering::Relaxed);
    // No faults are injected here, so every stale serve the cache counts
    // must surface as a `stale: true` answer — an unmarked one means a
    // wrong-version exact result was passed off as fresh.
    let unmarked_stale = stats.stale_serves.saturating_sub(marked);
    // A repaired snapshot's donor is at most three batches behind (the
    // previous round's mid-append plus the current round's two), and a
    // repair reads at most its suffix — so per-repair rows must stay
    // bounded by the churn, never the table.
    let max_suffix = (3 * batch) as u64;
    let repair_bounded = stats.repair_rows_read <= stats.snapshot_repairs * max_suffix;
    let avg_repair_rows = stats.repair_rows_read.checked_div(stats.snapshot_repairs).unwrap_or(0);
    eprintln!(
        "cache: {} repairs read {} rows (avg {avg_repair_rows}/repair, suffix cap {max_suffix}), \
         {} warm hits, {} exact invalidations",
        stats.snapshot_repairs, stats.repair_rows_read, stats.warm_hits, stats.exact_invalidations
    );

    let json = Value::obj([
        ("bench", "mixed_workload".into()),
        ("dataset", "flights".into()),
        ("rows", (rows as u64).into()),
        ("smoke", smoke.into()),
        ("host_cores", (host.cores as u64).into()),
        ("host_ram_bytes", host.ram_bytes.into()),
        ("fsync_mode", fsync_mode.name().into()),
        ("durable_workload", durable.is_durable().into()),
        (
            "workload",
            Value::obj([
                ("drivers", drivers.into()),
                ("rounds", rounds.into()),
                ("batch_rows", batch.into()),
                ("batches", batches.into()),
                ("appended_rows", appended_total.into()),
                ("final_version", live.version().into()),
                ("final_rows", live.snapshot().row_count().into()),
                ("queries", queries.into()),
                ("mixed_s", mixed_s.into()),
            ]),
        ),
        (
            "latency",
            Value::obj([
                ("cold_ms", dist_json(&cold_ms)),
                ("post_append_ms", dist_json(&warm_ms)),
                ("cold_rows_read_p50", percentile(&cold_rows, 50.0).into()),
                ("post_append_rows_read_p50", percentile(&warm_rows, 50.0).into()),
                ("warm_beats_cold", (warm_p50 < cold_p50).into()),
            ]),
        ),
        (
            "cache",
            Value::obj([
                ("exact_hits", stats.exact_hits.into()),
                ("warm_hits", stats.warm_hits.into()),
                ("misses", stats.misses.into()),
                ("warm_hit_rate", (stats.warm_hits as f64 / queries as f64).into()),
                ("exact_invalidations", stats.exact_invalidations.into()),
                ("snapshot_repairs", stats.snapshot_repairs.into()),
                ("repair_rows_read", stats.repair_rows_read.into()),
                ("avg_repair_rows", avg_repair_rows.into()),
                ("repair_suffix_cap_rows", max_suffix.into()),
                ("repair_reads_bounded", repair_bounded.into()),
                ("stale_serves", stats.stale_serves.into()),
                ("marked_stale_answers", marked.into()),
                ("unmarked_stale_answers", unmarked_stale.into()),
            ]),
        ),
        (
            "ingest",
            Value::obj([
                ("batch_rows", batch.into()),
                ("wal_off", ingest_mode_json(&off_ms, off_s, batch)),
                ("wal_on", ingest_mode_json(&on_ms, on_s, batch)),
                ("wal_on_overhead_x", (on_p50 / off_p50.max(1e-9)).into()),
                ("wal_bytes", wal_bytes.into()),
                ("fsyncs", fsyncs.into()),
                (
                    "retry",
                    Value::obj([
                        ("max_retries", retry_policy.max_retries.into()),
                        ("base_ms", (retry_policy.base.as_secs_f64() * 1e3).into()),
                        ("cap_ms", (retry_policy.cap.as_secs_f64() * 1e3).into()),
                        ("wal_retries", append_retries.load(Ordering::Relaxed).into()),
                    ]),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");

    println!("## Mixed append + query workload ({rows} rows, {rounds} rounds)\n");
    println!("| metric | value |");
    println!("|---|---|");
    println!("| appended rows / batches | {appended_total} / {batches} |");
    println!("| cold p50 | {cold_p50:.1} ms |");
    println!("| post-append warm p50 | {warm_p50:.1} ms |");
    println!("| snapshot repairs | {} |", stats.snapshot_repairs);
    println!("| rows read per repair (avg / cap) | {avg_repair_rows} / {max_suffix} |");
    println!("| exact invalidations | {} |", stats.exact_invalidations);
    println!("| warm hits | {} |", stats.warm_hits);
    println!("| unmarked stale answers | {unmarked_stale} |");
    println!("| wal-off append p50 | {off_p50:.2} ms |");
    println!("| wal-on ({}) append p50 | {on_p50:.2} ms |", fsync_mode.name());
    println!("| wal append retries | {} |", append_retries.load(Ordering::Relaxed));

    if smoke {
        let mut failures = Vec::new();
        if stats.snapshot_repairs == 0 {
            failures.push("no snapshot was repaired".to_string());
        }
        if !repair_bounded {
            failures.push(format!(
                "repairs read {} rows over {} repairs, above the {max_suffix}-row suffix cap",
                stats.repair_rows_read, stats.snapshot_repairs
            ));
        }
        if unmarked_stale > 0 {
            failures.push(format!("{unmarked_stale} stale serves were not marked on answers"));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("SMOKE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("smoke ok");
    }
}
