//! Regenerates Tables 2 and 10: the pilot study on implicit assumptions.

use voxolap_bench::{arg_usize, experiments::tab2_tab10};

fn main() {
    let seed = arg_usize("--seed", 42) as u64;
    print!("{}", tab2_tab10::run(seed));
}
