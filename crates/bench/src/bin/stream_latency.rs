//! Streaming-latency benchmark: time-to-first-sentence and inter-sentence
//! gap percentiles per approach, written to `BENCH_stream.json` (and
//! printed as markdown).
//!
//! ```text
//! cargo run --release --bin stream_latency \
//!     [--rows N | --scale-rows N] [--runs N] [--threads N] [--out PATH]
//! ```

use voxolap_bench::experiments::stream;
use voxolap_bench::{arg_rows, arg_usize, HostInfo};

fn main() {
    let rows = arg_rows(20_000);
    let runs = arg_usize("--runs", 15);
    let host = HostInfo::detect();
    let threads = arg_usize("--threads", host.cores.min(4));
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_stream.json".to_string())
    };

    let (reports, dataset_bytes) = stream::measure(rows, runs, threads);
    let json = stream::to_json(rows, runs, threads, host, dataset_bytes, &reports);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");
    print!("{}", stream::run(rows, runs, &reports));
}
