//! Streaming-latency benchmark: time-to-first-sentence and inter-sentence
//! gap percentiles per approach, written to `BENCH_stream.json` (and
//! printed as markdown).
//!
//! ```text
//! cargo run --release --bin stream_latency \
//!     [--rows N] [--runs N] [--threads N] [--out PATH]
//! ```

use voxolap_bench::arg_usize;
use voxolap_bench::experiments::stream;

fn main() {
    let rows = arg_usize("--rows", 20_000);
    let runs = arg_usize("--runs", 15);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = arg_usize("--threads", cores.min(4));
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_stream.json".to_string())
    };

    let reports = stream::measure(rows, runs, threads);
    let json = stream::to_json(rows, runs, threads, cores, &reports);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");
    print!("{}", stream::run(rows, runs, &reports));
}
