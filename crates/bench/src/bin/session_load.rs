//! Session-fabric load benchmark: thousands of concurrent long-lived
//! NDJSON voice sessions against the evented serving layer (DESIGN.md
//! §15), written to `BENCH_load.json`.
//!
//! Three measurements:
//!
//! 1. **Keep-alive warm starts** — TTFS of a `/query/stream` follow-up on
//!    a reused keep-alive connection (same scope, semantic cache warm)
//!    versus a cold connection, the §15 acceptance comparison.
//! 2. **Concurrent session fleet** — open thousands of upgraded session
//!    connections, hold them idle (resident bytes per idle session from
//!    `VmRSS`), then drive seeded multi-turn exploration scripts through
//!    every session and report utterance TTFS percentiles, RPS, and bytes
//!    per session.
//! 3. **Serving counters** — the reactor's own metrics (keep-alive
//!    reuses, sessions opened/closed, heartbeats) stamped alongside.
//!
//! ```text
//! cargo run --release --bin session_load \
//!     [--sessions N] [--turns N] [--rows N] [--drivers N] [--runs N]
//!     [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the fleet for CI (>=1000 sessions, 2 turns) and
//! exits non-zero after writing the record if any session was dropped or
//! no TTFS percentile was recorded.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use voxolap_bench::experiments::stream::percentile;
use voxolap_bench::{arg_usize, flights_table, HostInfo};
use voxolap_engine::poison::RecoveringMutex;
use voxolap_faults::RetryPolicy;
use voxolap_json::Value;
use voxolap_server::{raise_nofile_limit, serve_with, AppState, HttpMetrics, ServerConfig};
use voxolap_simuser::{utterance_script, ScriptConfig};

/// Cold-connection question (empty-filter scope, breakdown by region).
const Q_COLD: &str = "cancellation probability by region";
/// Keep-alive follow-up in the *same* scope (different breakdown), so the
/// reuse saves connect + accept + handshake and the semantic cache
/// warm-starts the samples.
const Q_WARM: &str = "cancellation probability by season";

/// One client connection with minimal buffering (the fleet lives in this
/// process, so per-connection client memory pollutes the idle-RSS
/// measurement; reads go through a small chunk into one growable line
/// buffer).
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    bytes_in: u64,
}

impl Conn {
    fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Conn { stream, buf: Vec::new(), bytes_in: 0 })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 256];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer closed"));
        }
        self.bytes_in += n as u64;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Read one `\n`-terminated line (CR stripped).
    fn read_line(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(String::from_utf8_lossy(&line).into_owned());
            }
            self.fill()?;
        }
    }

    /// Read an HTTP response head, returning the status code.
    fn read_head(&mut self) -> std::io::Result<u16> {
        loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.buf[..pos]).into_owned();
                self.buf.drain(..pos + 4);
                let status =
                    head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(
                        || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"),
                    )?;
                return Ok(status);
            }
            self.fill()?;
        }
    }

    /// Read one chunked-transfer body to the terminal chunk, returning
    /// the elapsed time to the first `sentence` payload.
    fn read_chunked_stream(&mut self, t0: Instant) -> std::io::Result<Option<f64>> {
        let mut ttfs = None;
        loop {
            let size_line = self.read_line()?;
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad chunk size")
            })?;
            while self.buf.len() < size + 2 {
                self.fill()?;
            }
            let payload: Vec<u8> = self.buf.drain(..size).collect();
            self.buf.drain(..2); // chunk-terminating CRLF
            if size == 0 {
                return Ok(ttfs);
            }
            if ttfs.is_none() && String::from_utf8_lossy(&payload).contains("\"sentence\"") {
                ttfs = Some(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
}

/// One `/query/stream` round trip on an open connection (keep-alive
/// requested), returning TTFS in milliseconds.
fn stream_ttfs(conn: &mut Conn, question: &str) -> std::io::Result<f64> {
    let body = format!("{{\"question\": \"{question}\"}}");
    let req = format!(
        "POST /query/stream HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let t0 = Instant::now();
    conn.stream.write_all(req.as_bytes())?;
    let status = conn.read_head()?;
    if status != 200 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("stream request got {status}"),
        ));
    }
    let ttfs = conn.read_chunked_stream(t0)?;
    ttfs.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "stream carried no sentence")
    })
}

/// Attach one upgraded session connection: `101` handshake + `hello`.
fn attach(addr: SocketAddr, id: &str, timeout: Duration) -> std::io::Result<Conn> {
    let mut conn = Conn::connect(addr, timeout)?;
    let req = format!("GET /session/{id}/attach HTTP/1.1\r\nHost: bench\r\n\r\n");
    conn.stream.write_all(req.as_bytes())?;
    let status = conn.read_head()?;
    if status != 101 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("attach got {status}, want 101"),
        ));
    }
    let hello = conn.read_line()?;
    if !hello.contains("\"hello\"") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected hello event, got {hello:?}"),
        ));
    }
    conn.buf.shrink_to_fit();
    Ok(conn)
}

/// Send one utterance and read events to the end of its speech stream.
/// Returns (ttfs_ms, stream-ended) — `ttfs_ms` is `None` for event kinds
/// that carry no sentences (help, error).
fn drive_utterance(conn: &mut Conn, text: &str) -> std::io::Result<Option<f64>> {
    let line = Value::obj([("type", "utter".into()), ("text", text.into())]).to_string();
    let t0 = Instant::now();
    conn.stream.write_all(format!("{line}\n").as_bytes())?;
    let mut ttfs = None;
    loop {
        let event = conn.read_line()?;
        if event.contains("\"heartbeat\"") {
            continue;
        }
        if ttfs.is_none() && event.contains("\"sentence\"") {
            ttfs = Some(t0.elapsed().as_secs_f64() * 1e3);
        }
        if event.contains("\"done\"") || event.contains("\"help\"") || event.contains("\"error\"") {
            return Ok(ttfs);
        }
        if event.contains("\"bye\"") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server said bye mid-utterance",
            ));
        }
    }
}

/// Backoff for `503` + `Retry-After` admission rejections: the server
/// sheds load when its queue saturates, and a well-behaved client retries
/// with jitter instead of declaring the session dropped.
fn bench_retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(250),
    }
}

/// Whether an I/O error wraps a `503` response (our request helpers embed
/// the status code in the error text).
fn is_503(e: &std::io::Error) -> bool {
    e.to_string().contains("503")
}

/// Run `op`, retrying `503` rejections per `policy` with deterministic
/// per-token jitter; every other error (and exhaustion) passes through.
fn with_retry_503<T>(
    policy: &RetryPolicy,
    token: u64,
    retries: &AtomicU64,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if is_503(&e) && attempt < policy.max_retries => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(policy.delay(attempt, token));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Resident set size of this process in bytes (`0` where undetectable).
fn vm_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn dist_json(samples: &[f64]) -> Value {
    Value::obj([
        ("count", samples.len().into()),
        ("p50", percentile(samples, 50.0).into()),
        ("p90", percentile(samples, 90.0).into()),
        ("p99", percentile(samples, 99.0).into()),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = arg_usize("--rows", if smoke { 6_000 } else { 20_000 });
    let turns = arg_usize("--turns", if smoke { 2 } else { 3 });
    let runs = arg_usize("--runs", if smoke { 5 } else { 9 });
    let host = HostInfo::detect();
    let drivers = arg_usize("--drivers", host.cores.clamp(2, 16));
    let mut sessions = arg_usize("--sessions", if smoke { 1_200 } else { 5_000 });
    // Voice sessions are think-time dominated: the fleet holds open
    // (that is the resident-memory and readiness claim), while an active
    // subset drives utterances for the TTFS/RPS distributions — planning
    // is CPU-bound, so driving every session would measure core count,
    // not the serving fabric.
    let active = arg_usize("--active", if smoke { 32 } else { 64 });
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_load.json".to_string())
    };

    // Client + server fds both live in this process: two per session.
    let fd_limit = raise_nofile_limit();
    let fd_budget = fd_limit.saturating_sub(128) / 2;
    if (sessions as u64) > fd_budget {
        eprintln!("fd limit {fd_limit}: clamping fleet {sessions} -> {fd_budget}");
        sessions = fd_budget as usize;
    }

    let active = active.min(sessions);
    eprintln!(
        "session_load: rows={rows} sessions={sessions} (active={active}) \
         turns={turns} drivers={drivers}"
    );
    let config = ServerConfig {
        threads: host.cores.clamp(2, 8),
        queue: 256,
        // Idle fleets must not be reaped or flooded with heartbeats while
        // we measure resident memory.
        session_idle_timeout: Duration::from_secs(600),
        heartbeat: Duration::from_secs(120),
        log_requests: false,
        ..ServerConfig::default()
    };
    let state = Arc::new(
        AppState::new(flights_table(rows))
            .with_session_timing(
                config.heartbeat.as_millis() as u64,
                config.session_idle_timeout.as_millis() as u64,
            )
            // Scripts wander into wide scopes (multi-level drill-downs);
            // unbounded, one such utterance converges for minutes and pins
            // a worker. Bound it like a production voice deployment would.
            .with_utterance_deadline(Duration::from_secs(10)),
    );
    let handler_state = Arc::clone(&state);
    let http_metrics = Arc::new(HttpMetrics::default());
    let handle = serve_with("127.0.0.1:0", config, Arc::clone(&http_metrics), move |req| {
        handler_state.handle(req)
    })
    .expect("serve");
    let addr = handle.addr;
    if std::env::var_os("SESSION_LOAD_TRACE").is_some() {
        eprintln!("listening on {addr}");
    }

    // ---- Phase 1: keep-alive warm start vs cold connection ------------
    let io_timeout = Duration::from_secs(60);
    let retry_policy = bench_retry_policy();
    let retries_503 = Arc::new(AtomicU64::new(0));
    {
        // Warm the vocalizer + planner caches once, uncounted.
        let mut warmup = Conn::connect(addr, io_timeout).expect("warmup connect");
        stream_ttfs(&mut warmup, Q_COLD).expect("warmup stream");
    }
    let mut cold_ttfs = Vec::with_capacity(runs);
    let mut warm_ttfs = Vec::with_capacity(runs);
    for r in 0..runs {
        // A 503 mid-pair retries the whole cold+warm pair on a fresh
        // connection (a rejected response leaves the old framing dirty).
        let (cold, warm) = with_retry_503(&retry_policy, r as u64, &retries_503, || {
            let mut conn = Conn::connect(addr, io_timeout)?;
            let cold = stream_ttfs(&mut conn, Q_COLD)?;
            // Same connection, same scope: keep-alive reuse + semantic
            // warm start.
            let warm = stream_ttfs(&mut conn, Q_WARM)?;
            Ok((cold, warm))
        })
        .expect("keep-alive pair");
        cold_ttfs.push(cold);
        warm_ttfs.push(warm);
    }
    let cold_p50 = percentile(&cold_ttfs, 50.0);
    let warm_p50 = percentile(&warm_ttfs, 50.0);
    eprintln!("keep-alive: cold p50 {cold_p50:.2} ms, warm follow-up p50 {warm_p50:.2} ms");

    // ---- Phase 2: concurrent session fleet ----------------------------
    let opened = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let utterances = Arc::new(AtomicU64::new(0));
    let fleet_bytes = Arc::new(AtomicU64::new(0));
    // Sample vectors recover (emptied) instead of poisoning the harness
    // if a driver thread panics mid-extend.
    let all_ttfs: Arc<RecoveringMutex<Vec<f64>>> = Arc::new(RecoveringMutex::new(Vec::new()));
    let all_attach: Arc<RecoveringMutex<Vec<f64>>> = Arc::new(RecoveringMutex::new(Vec::new()));
    // Rendezvous: open -> (main measures idle RSS) -> rounds -> done.
    let barrier = Arc::new(Barrier::new(drivers + 1));

    let rss_before = vm_rss_bytes();
    let script_config = ScriptConfig { turns, seed: 0x5e55_1013 };
    let mut threads = Vec::with_capacity(drivers);
    for d in 0..drivers {
        let opened = Arc::clone(&opened);
        let dropped = Arc::clone(&dropped);
        let utterances = Arc::clone(&utterances);
        let fleet_bytes = Arc::clone(&fleet_bytes);
        let all_ttfs = Arc::clone(&all_ttfs);
        let all_attach = Arc::clone(&all_attach);
        let barrier = Arc::clone(&barrier);
        let retries_503 = Arc::clone(&retries_503);
        threads.push(std::thread::spawn(move || {
            let mine: Vec<usize> = (d..sessions).step_by(drivers).collect();
            let mut attach_local = Vec::with_capacity(mine.len());
            let mut conns: Vec<Option<(usize, Conn)>> = mine
                .iter()
                .map(|&i| {
                    let t0 = Instant::now();
                    // Admission 503s (each attach attempt dials a fresh
                    // connection) back off and retry before counting a
                    // drop.
                    let attached = with_retry_503(&retry_policy, i as u64, &retries_503, || {
                        attach(addr, &format!("s{i}"), io_timeout)
                    });
                    match attached {
                        Ok(conn) => {
                            attach_local.push(t0.elapsed().as_secs_f64() * 1e3);
                            opened.fetch_add(1, Ordering::Relaxed);
                            Some((i, conn))
                        }
                        Err(e) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                            eprintln!("session s{i}: attach failed: {e}");
                            None
                        }
                    }
                })
                .collect();
            all_attach.lock_recovering(Vec::clear).extend_from_slice(&attach_local);
            barrier.wait(); // fleet open, idle
            barrier.wait(); // idle RSS measured, start rounds
            let mut ttfs_local = Vec::new();
            for turn in 0..turns {
                for slot in conns.iter_mut() {
                    let Some((i, conn)) = slot else { continue };
                    if *i >= active {
                        continue; // idle fleet member: holds the connection
                    }
                    let script = utterance_script(script_config, *i as u64);
                    if std::env::var_os("SESSION_LOAD_TRACE").is_some() {
                        eprintln!("driver {d}: s{i} turn {turn} utter {:?}", script[turn]);
                    }
                    match drive_utterance(conn, &script[turn]) {
                        Ok(ttfs) => {
                            if std::env::var_os("SESSION_LOAD_TRACE").is_some() {
                                eprintln!("driver {d}: s{i} turn {turn} done");
                            }
                            utterances.fetch_add(1, Ordering::Relaxed);
                            if let Some(ms) = ttfs {
                                ttfs_local.push(ms);
                            }
                        }
                        Err(e) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                            eprintln!("session s{i} turn {turn}: {e}");
                            fleet_bytes.fetch_add(conn.bytes_in, Ordering::Relaxed);
                            *slot = None;
                        }
                    }
                }
            }
            all_ttfs.lock_recovering(Vec::clear).extend_from_slice(&ttfs_local);
            barrier.wait(); // rounds done
            for (_, mut conn) in conns.into_iter().flatten() {
                let _ = conn.stream.write_all(b"{\"type\":\"bye\"}\n");
                fleet_bytes.fetch_add(conn.bytes_in, Ordering::Relaxed);
            }
        }));
    }

    let open_t0 = Instant::now();
    barrier.wait(); // all sessions open
    let open_ms = open_t0.elapsed().as_secs_f64() * 1e3;
    // Let allocators and the reactor settle before reading RSS.
    std::thread::sleep(Duration::from_millis(750));
    let rss_idle = vm_rss_bytes();
    let fleet_opened = opened.load(Ordering::Relaxed);
    let rss_per_session =
        rss_idle.saturating_sub(rss_before).checked_div(fleet_opened).unwrap_or(0);
    eprintln!(
        "fleet: {fleet_opened}/{sessions} open in {open_ms:.0} ms, \
         {rss_per_session} resident bytes per idle session"
    );
    let rounds_t0 = Instant::now();
    barrier.wait(); // start rounds
    barrier.wait(); // rounds done (byes follow, untimed)
    let rounds_s = rounds_t0.elapsed().as_secs_f64();
    for t in threads {
        t.join().expect("driver thread");
    }
    let total_utterances = utterances.load(Ordering::Relaxed);
    let fleet_dropped = dropped.load(Ordering::Relaxed);
    let rps = total_utterances as f64 / rounds_s.max(1e-9);
    let ttfs = all_ttfs.lock_recovering(Vec::clear).clone();
    let ttfs_p99 = percentile(&ttfs, 99.0);
    let attach_ms = all_attach.lock_recovering(Vec::clear).clone();
    let attach_p99 = percentile(&attach_ms, 99.0);
    let bytes_per_session =
        fleet_bytes.load(Ordering::Relaxed).checked_div(fleet_opened).unwrap_or(0);
    eprintln!(
        "rounds: {total_utterances} utterances in {rounds_s:.1} s ({rps:.0} rps), \
         ttfs p50 {:.1} ms p99 {ttfs_p99:.1} ms, {fleet_dropped} dropped",
        percentile(&ttfs, 50.0)
    );

    let metrics = handle.metrics().snapshot();
    handle.shutdown();

    // ---- Record ------------------------------------------------------
    let total_retries_503 = retries_503.load(Ordering::Relaxed);
    let json = Value::obj([
        ("bench", "session_load".into()),
        ("dataset", "flights".into()),
        ("rows", (rows as u64).into()),
        ("smoke", smoke.into()),
        ("host_cores", (host.cores as u64).into()),
        ("host_ram_bytes", host.ram_bytes.into()),
        ("fd_limit", fd_limit.into()),
        (
            "retry",
            Value::obj([
                ("max_retries", retry_policy.max_retries.into()),
                ("base_ms", (retry_policy.base.as_secs_f64() * 1e3).into()),
                ("cap_ms", (retry_policy.cap.as_secs_f64() * 1e3).into()),
                ("retries_503", total_retries_503.into()),
            ]),
        ),
        (
            "keepalive",
            Value::obj([
                ("runs", runs.into()),
                ("cold_ttfs_ms", dist_json(&cold_ttfs)),
                ("warm_ttfs_ms", dist_json(&warm_ttfs)),
                ("warm_beats_cold", (warm_p50 < cold_p50).into()),
            ]),
        ),
        (
            "sessions",
            Value::obj([
                ("target", sessions.into()),
                ("opened", fleet_opened.into()),
                ("dropped", fleet_dropped.into()),
                ("active", active.into()),
                ("turns", turns.into()),
                ("drivers", drivers.into()),
                ("utterance_deadline_ms", 10_000u64.into()),
                ("open_ms", open_ms.into()),
                ("attach_ms", dist_json(&attach_ms)),
                ("rss_per_idle_session_bytes", rss_per_session.into()),
                ("utterances", total_utterances.into()),
                ("rounds_s", rounds_s.into()),
                ("rps", rps.into()),
                ("ttfs_ms", dist_json(&ttfs)),
                ("bytes_per_session", bytes_per_session.into()),
            ]),
        ),
        (
            "http",
            Value::obj([
                ("accepted", metrics.accepted.into()),
                ("rejected", metrics.rejected.into()),
                ("keepalive_reuses", metrics.keepalive_reuses.into()),
                ("sessions_opened", metrics.sessions_opened.into()),
                ("sessions_closed", metrics.sessions_closed.into()),
                ("session_lines", metrics.session_lines.into()),
                ("heartbeats_sent", metrics.heartbeats_sent.into()),
                ("reject_write_failures", metrics.reject_write_failures.into()),
                ("idle_closed", metrics.idle_closed.into()),
            ]),
        ),
    ]);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");

    println!("## Session-fabric load ({fleet_opened} sessions, {rows} rows)\n");
    println!("| metric | value |");
    println!("|---|---|");
    println!("| cold TTFS p50 | {cold_p50:.2} ms |");
    println!("| keep-alive warm TTFS p50 | {warm_p50:.2} ms |");
    println!("| sessions opened / dropped | {fleet_opened} / {fleet_dropped} |");
    println!("| attach p50 / p99 | {:.2} / {attach_p99:.2} ms |", percentile(&attach_ms, 50.0));
    println!("| resident bytes per idle session | {rss_per_session} |");
    println!("| utterance RPS | {rps:.0} |");
    println!("| utterance TTFS p50 / p99 | {:.1} / {ttfs_p99:.1} ms |", percentile(&ttfs, 50.0));
    println!("| bytes per session | {bytes_per_session} |");

    if smoke {
        let mut failures = Vec::new();
        if fleet_opened < 1_000 {
            failures.push(format!("smoke needs >=1000 concurrent sessions, got {fleet_opened}"));
        }
        if fleet_dropped > 0 {
            failures.push(format!("{fleet_dropped} sessions dropped"));
        }
        if ttfs.is_empty() || ttfs_p99 <= 0.0 {
            failures.push("no utterance TTFS recorded".to_string());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("SMOKE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("smoke ok");
    }
}
