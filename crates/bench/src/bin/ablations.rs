//! Runs the design-choice ablations (pipelining budget, UCT vs random,
//! resample size, sigma calibration).

use voxolap_bench::{arg_usize, experiments::ablations, flights_table};

fn main() {
    let rows = arg_usize("--rows", 100_000);
    let seed = arg_usize("--seed", 42) as u64;
    let table = flights_table(rows);
    print!("{}", ablations::run(&table, seed));
}
