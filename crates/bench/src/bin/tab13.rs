//! Regenerates Table 13: speeches for a query with hundreds of result
//! fields (state x month).

use voxolap_bench::{arg_usize, experiments::tab5_tab13, flights_table, DEFAULT_FLIGHTS_ROWS};

fn main() {
    let rows = arg_usize("--rows", DEFAULT_FLIGHTS_ROWS);
    let seed = arg_usize("--seed", 42) as u64;
    let table = flights_table(rows);
    print!("{}", tab5_tab13::run_tab13(&table, seed));
}
