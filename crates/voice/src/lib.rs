//! # voxolap-voice
//!
//! The interactive front-end substrate: a wall-clock text-to-speech
//! simulator, the keyword-based voice-input parser (the paper's input
//! component is "rather simple and based on keywords", §5.2), and an
//! interactive analysis session driver supporting drill-down, roll-up, and
//! dimension add/remove — the operations crowd workers used in the
//! exploratory study.
//!
//! ```
//! use voxolap_data::flights::FlightsConfig;
//! use voxolap_voice::session::Session;
//!
//! let table = FlightsConfig::small().generate();
//! let mut session = Session::new(&table);
//! session.input("break down by region").unwrap();
//! session.input("break down by season").unwrap();
//! let query = session.query().unwrap();
//! assert_eq!(query.n_aggregates(), 20); // 5 regions x 4 seasons
//! ```

pub mod parser;
pub mod question;
pub mod session;
pub mod tts;

pub use parser::{parse, Command};
pub use question::parse_question;
pub use session::{Session, StreamEvent};
pub use tts::RealTimeVoice;
