//! Wall-clock text-to-speech simulation.
//!
//! Stands in for the ResponsiveVoiceJS / Google TTS service of the paper's
//! web interface: speaking time is `characters / rate`. `start` returns
//! immediately (as the paper's `VO.Start` requires) and `is_playing`
//! compares against the wall clock, so the holistic planner genuinely
//! overlaps sampling with "speaking" in real time.

use std::time::{Duration, Instant};

use voxolap_core::voice::VoiceOutput;

/// Default speaking rate: ≈ 15 characters per second, a typical synthetic
/// voice at normal speed.
pub const DEFAULT_CHARS_PER_SEC: f64 = 15.0;

/// A wall-clock voice: sentences "play" for `len / chars_per_sec` seconds.
#[derive(Debug, Clone)]
pub struct RealTimeVoice {
    chars_per_sec: f64,
    playing_until: Option<Instant>,
    transcript: Vec<String>,
}

impl RealTimeVoice {
    /// Create with an explicit speaking rate (characters per second).
    pub fn new(chars_per_sec: f64) -> Self {
        assert!(chars_per_sec > 0.0 && chars_per_sec.is_finite());
        RealTimeVoice { chars_per_sec, playing_until: None, transcript: Vec::new() }
    }

    /// Speaking time for a given sentence at this voice's rate.
    pub fn duration_of(&self, sentence: &str) -> Duration {
        Duration::from_secs_f64(sentence.chars().count() as f64 / self.chars_per_sec)
    }

    /// Block until the current sentence finishes (used at session end so a
    /// transcript is complete before the process moves on).
    pub fn wait_until_done(&mut self) {
        if let Some(t) = self.playing_until {
            let now = Instant::now();
            if t > now {
                std::thread::sleep(t - now);
            }
            self.playing_until = None;
        }
    }
}

impl Default for RealTimeVoice {
    fn default() -> Self {
        RealTimeVoice::new(DEFAULT_CHARS_PER_SEC)
    }
}

impl VoiceOutput for RealTimeVoice {
    fn start(&mut self, sentence: &str) {
        self.playing_until = Some(Instant::now() + self.duration_of(sentence));
        self.transcript.push(sentence.to_string());
    }

    fn is_playing(&mut self) -> bool {
        match self.playing_until {
            Some(t) => {
                if Instant::now() < t {
                    true
                } else {
                    self.playing_until = None;
                    false
                }
            }
            None => false,
        }
    }

    fn transcript(&self) -> &[String] {
        &self.transcript
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn playing_state_follows_wall_clock() {
        // Very fast voice: 10 chars in 1 ms.
        let mut v = RealTimeVoice::new(10_000.0);
        v.start("aaaaaaaaaa");
        assert!(v.is_playing());
        std::thread::sleep(Duration::from_millis(5));
        assert!(!v.is_playing());
    }

    #[test]
    fn duration_scales_with_length() {
        let v = RealTimeVoice::new(15.0);
        assert_eq!(v.duration_of("abc"), Duration::from_secs_f64(0.2));
        assert!(v.duration_of("a longer sentence") > v.duration_of("short"));
    }

    #[test]
    fn wait_until_done_blocks() {
        let mut v = RealTimeVoice::new(1_000.0);
        v.start("aaaaaaaaaaaaaaaaaaaa"); // 20 ms
        let t0 = Instant::now();
        v.wait_until_done();
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(!v.is_playing());
    }

    #[test]
    fn transcript_accumulates() {
        let mut v = RealTimeVoice::new(10_000.0);
        v.start("one");
        v.start("two");
        assert_eq!(v.transcript(), &["one".to_string(), "two".to_string()]);
    }
}
