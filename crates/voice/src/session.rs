//! Interactive analysis sessions.
//!
//! Tracks the evolving OLAP query state (aggregation function, breakdown
//! levels, filters) as a user issues keyword commands, and vocalizes the
//! current result on demand — the server-side state behind the paper's web
//! interface for the exploratory study (§5.2).

use voxolap_core::approach::Vocalizer;
use voxolap_core::outcome::VocalizationOutcome;
use voxolap_core::pipeline::PlannedSentence;
use voxolap_core::voice::VoiceOutput;
use voxolap_core::CancelToken;
use voxolap_data::dimension::{LevelId, MemberId};
use voxolap_data::schema::DimId;
use voxolap_data::Table;
use voxolap_engine::error::EngineError;
use voxolap_engine::query::{AggFct, Query};

use crate::parser::{parse, Command, ParseError};

/// Outcome of feeding one utterance into a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Keyword listing to read out.
    Help(String),
    /// The query state changed; re-vocalize to hear the new result.
    Updated,
    /// The user ended the session.
    Quit,
}

/// Session-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The utterance matched no keyword.
    Parse(ParseError),
    /// The command would produce an invalid query; state was not changed.
    InvalidQuery(EngineError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::InvalidQuery(e) => write!(f, "command rejected: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// The tentative session state a command produces: breakdown levels,
/// filters, and aggregation function.
type TentativeState = (Vec<(DimId, LevelId)>, Vec<(DimId, MemberId)>, AggFct);

/// One event from [`Session::vocalize_streaming`], delivered as soon as
/// the planner produces it (the preamble right after query compilation,
/// each sentence as it is committed).
#[derive(Debug)]
pub enum StreamEvent<'a> {
    /// The up-front result description.
    Preamble(&'a str),
    /// One committed sentence with its planner statistics.
    Sentence(&'a PlannedSentence),
}

/// An interactive voice-OLAP session over one table.
#[derive(Debug)]
pub struct Session<'a> {
    table: &'a Table,
    fct: AggFct,
    group: Vec<(DimId, LevelId)>,
    filters: Vec<(DimId, MemberId)>,
    /// Correctly parsed commands, in order (the study counts these).
    log: Vec<String>,
}

impl<'a> Session<'a> {
    /// Start a session with no breakdown and AVG aggregation.
    pub fn new(table: &'a Table) -> Self {
        Session { table, fct: AggFct::Avg, group: Vec::new(), filters: Vec::new(), log: Vec::new() }
    }

    /// Feed one utterance. On success the command is logged and applied;
    /// on failure the session state is unchanged.
    pub fn input(&mut self, text: &str) -> Result<Response, SessionError> {
        let cmd = parse(self.table.schema(), text).map_err(SessionError::Parse)?;
        if cmd == Command::Help {
            return Ok(Response::Help(self.help_text()));
        }
        if cmd == Command::Quit {
            return Ok(Response::Quit);
        }
        // Apply tentatively; only commit if the resulting query builds.
        let (group, filters, fct) = self.applied(&cmd);
        let trial = Self::build_query(self.table, fct, &group, &filters)
            .map_err(SessionError::InvalidQuery)?;
        let _ = trial;
        self.group = group;
        self.filters = filters;
        self.fct = fct;
        self.log.push(text.to_string());
        Ok(Response::Updated)
    }

    /// The new state a command would produce (without committing).
    fn applied(&self, cmd: &Command) -> TentativeState {
        let mut group = self.group.clone();
        let mut filters = self.filters.clone();
        let mut fct = self.fct;
        let schema = self.table.schema();
        match *cmd {
            Command::Help | Command::Quit => {}
            Command::SetFct(f) => fct = f,
            Command::GroupBy(dim, level) => {
                group.retain(|&(d, _)| d != dim);
                group.push((dim, level));
            }
            Command::DrillDown(dim) => {
                let leaf = schema.dimension(dim).leaf_level();
                match group.iter_mut().find(|(d, _)| *d == dim) {
                    Some((_, l)) => {
                        if l.index() < leaf.index() {
                            *l = LevelId(l.0 + 1);
                        }
                    }
                    None => group.push((dim, LevelId(1))),
                }
            }
            Command::RollUp(dim) => {
                if let Some(pos) = group.iter().position(|&(d, _)| d == dim) {
                    if group[pos].1.index() <= 1 {
                        group.remove(pos);
                    } else {
                        group[pos].1 = LevelId(group[pos].1 .0 - 1);
                    }
                }
            }
            Command::Remove(dim) => {
                group.retain(|&(d, _)| d != dim);
                filters.retain(|&(d, _)| d != dim);
            }
            Command::Filter(dim, member) => {
                filters.retain(|&(d, _)| d != dim);
                filters.push((dim, member));
                // A filter finer than the current grouping level deepens
                // the grouping to stay meaningful.
                if let Some((_, l)) = group.iter_mut().find(|(d, _)| *d == dim) {
                    let member_level = schema.dimension(dim).member(member).level;
                    if member_level.index() > l.index() {
                        *l = member_level;
                    }
                }
            }
            Command::ClearFilters => filters.clear(),
        }
        (group, filters, fct)
    }

    fn build_query(
        table: &Table,
        fct: AggFct,
        group: &[(DimId, LevelId)],
        filters: &[(DimId, MemberId)],
    ) -> Result<Query, EngineError> {
        let mut b = Query::builder(fct);
        for &(d, l) in group {
            b = b.group_by(d, l);
        }
        for &(d, m) in filters {
            b = b.filter(d, m);
        }
        b.build(table.schema())
    }

    /// The query for the current session state.
    pub fn query(&self) -> Result<Query, EngineError> {
        Self::build_query(self.table, self.fct, &self.group, &self.filters)
    }

    /// Vocalize the current result with the given approach.
    pub fn vocalize_with(
        &self,
        vocalizer: &dyn Vocalizer,
        voice: &mut dyn VoiceOutput,
    ) -> Result<VocalizationOutcome, EngineError> {
        let query = self.query()?;
        Ok(vocalizer.vocalize(self.table, &query, voice))
    }

    /// Vocalize the current result, delivering the preamble and each
    /// committed sentence to `on_event` as planning progresses instead of
    /// blocking until the full transcript exists. The `cancel` token stops
    /// planning early (e.g. when the user interrupts); the returned
    /// outcome then covers the sentences spoken so far.
    pub fn vocalize_streaming(
        &self,
        vocalizer: &dyn Vocalizer,
        voice: &mut dyn VoiceOutput,
        cancel: CancelToken,
        mut on_event: impl FnMut(StreamEvent<'_>),
    ) -> Result<VocalizationOutcome, EngineError> {
        let query = self.query()?;
        let mut stream = vocalizer.stream(self.table, &query, voice, cancel);
        on_event(StreamEvent::Preamble(stream.preamble()));
        while let Some(sentence) = stream.next_sentence() {
            on_event(StreamEvent::Sentence(&sentence));
        }
        Ok(stream.finish())
    }

    /// Help text listing all available keywords (read out on request).
    pub fn help_text(&self) -> String {
        let schema = self.table.schema();
        let mut out = String::from(
            "Say help, quit, average, total, or count. \
             Say drill down, roll up, or remove, followed by a dimension. \
             Say break down by, followed by a level. Dimensions: ",
        );
        let dims: Vec<&str> = schema.dimensions().iter().map(|d| d.name()).collect();
        out.push_str(&dims.join(", "));
        out.push_str(". Levels: ");
        let levels: Vec<String> = schema
            .dimensions()
            .iter()
            .flat_map(|d| {
                (1..d.level_count()).map(move |l| d.level_name(LevelId(l as u8)).to_string())
            })
            .collect();
        out.push_str(&levels.join(", "));
        out.push('.');
        out
    }

    /// Number of correctly parsed (applied) commands — the paper's per-user
    /// query count.
    pub fn commands_applied(&self) -> usize {
        self.log.len()
    }

    /// The applied-command log.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// The current aggregation function.
    pub fn fct(&self) -> AggFct {
        self.fct
    }

    /// The current breakdown (dimension, level) pairs.
    pub fn breakdown(&self) -> &[(DimId, LevelId)] {
        &self.group
    }

    /// The current filters.
    pub fn current_filters(&self) -> &[(DimId, MemberId)] {
        &self.filters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_core::holistic::{Holistic, HolisticConfig};
    use voxolap_core::voice::InstantVoice;
    use voxolap_data::flights::FlightsConfig;

    fn table() -> Table {
        FlightsConfig { rows: 5_000, seed: 42 }.generate()
    }

    #[test]
    fn drill_and_roll_navigate_levels() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("drill down into the start airport").unwrap();
        assert_eq!(s.breakdown(), &[(DimId(0), LevelId(1))]);
        s.input("drill down into the start airport").unwrap();
        assert_eq!(s.breakdown(), &[(DimId(0), LevelId(2))]);
        s.input("roll up the start airport").unwrap();
        assert_eq!(s.breakdown(), &[(DimId(0), LevelId(1))]);
        s.input("roll up the start airport").unwrap();
        assert!(s.breakdown().is_empty(), "rolling past the top removes the dim");
    }

    #[test]
    fn filters_combine_with_breakdowns() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by season").unwrap();
        s.input("only the north east").unwrap();
        let q = s.query().unwrap();
        assert_eq!(q.n_aggregates(), 4);
        assert_eq!(q.filters().len(), 1);
    }

    #[test]
    fn filter_deepens_grouping_when_needed() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by region").unwrap();
        // Filtering to a specific city while grouped by region would be
        // degenerate; the session deepens the grouping to city level.
        s.input("boston").unwrap();
        let q = s.query().unwrap();
        assert_eq!(q.group_by()[0].1, LevelId(3));
    }

    #[test]
    fn help_lists_keywords() {
        let t = table();
        let mut s = Session::new(&t);
        match s.input("help").unwrap() {
            Response::Help(text) => {
                assert!(text.contains("start airport"));
                assert!(text.contains("season"));
                assert!(text.contains("drill down"));
            }
            other => panic!("expected help, got {other:?}"),
        }
        assert_eq!(s.commands_applied(), 0, "help is not logged as a query");
    }

    #[test]
    fn quit_is_signalled() {
        let t = table();
        let mut s = Session::new(&t);
        assert_eq!(s.input("quit").unwrap(), Response::Quit);
    }

    #[test]
    fn bad_input_leaves_state_untouched() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by season").unwrap();
        let before = s.breakdown().to_vec();
        assert!(s.input("make me a sandwich").is_err());
        assert_eq!(s.breakdown(), before);
        assert_eq!(s.commands_applied(), 1);
    }

    #[test]
    fn remove_drops_dimension_and_filter() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by season").unwrap();
        s.input("winter").unwrap();
        s.input("remove the flight date").unwrap();
        assert!(s.breakdown().is_empty());
        assert!(s.current_filters().is_empty());
    }

    #[test]
    fn session_vocalizes_current_query() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by region").unwrap();
        s.input("break down by season").unwrap();
        let holistic = Holistic::new(HolisticConfig {
            min_samples_per_sentence: 200,
            ..HolisticConfig::default()
        });
        let mut voice = InstantVoice::default();
        let outcome = s.vocalize_with(&holistic, &mut voice).unwrap();
        assert!(outcome.preamble.contains("broken down by region and season"));
    }

    #[test]
    fn streaming_vocalization_matches_blocking_transcript() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by region").unwrap();
        let holistic = Holistic::new(HolisticConfig {
            min_samples_per_sentence: 200,
            ..HolisticConfig::default()
        });
        let mut voice = InstantVoice::default();
        let blocking = s.vocalize_with(&holistic, &mut voice).unwrap();
        let mut preamble = String::new();
        let mut streamed = Vec::new();
        let outcome = s
            .vocalize_streaming(&holistic, &mut voice, CancelToken::never(), |ev| match ev {
                StreamEvent::Preamble(p) => preamble = p.to_string(),
                StreamEvent::Sentence(sent) => streamed.push(sent.text.clone()),
            })
            .unwrap();
        assert_eq!(preamble, blocking.preamble);
        assert_eq!(streamed, blocking.sentences);
        assert_eq!(outcome.sentences, blocking.sentences);
    }

    #[test]
    fn cancelled_streaming_stops_early() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by region").unwrap();
        s.input("break down by season").unwrap();
        let holistic = Holistic::new(HolisticConfig {
            min_samples_per_sentence: 200,
            ..HolisticConfig::default()
        });
        let mut voice = InstantVoice::default();
        let cancel = CancelToken::new();
        let mut n = 0usize;
        let outcome = s
            .vocalize_streaming(&holistic, &mut voice, cancel.clone(), |ev| {
                if matches!(ev, StreamEvent::Sentence(_)) {
                    n += 1;
                    cancel.cancel();
                }
            })
            .unwrap();
        assert_eq!(n, 1, "no sentence may follow the cancellation");
        assert_eq!(outcome.sentences.len(), 1);
    }

    #[test]
    fn aggregation_switch_changes_fct() {
        let t = table();
        let mut s = Session::new(&t);
        s.input("how many flights are there").unwrap();
        assert_eq!(s.fct(), AggFct::Count);
        s.input("back to the average").unwrap();
        assert_eq!(s.fct(), AggFct::Avg);
    }

    #[test]
    fn degraded_outcomes_surface_through_session_vocalization() {
        use std::sync::Arc;
        use voxolap_faults::{FaultPlan, FaultSite, Resilience, SiteSchedule};
        let t = table();
        let mut s = Session::new(&t);
        s.input("break down by region").unwrap();
        // Every data read fails and the breaker trips immediately: the
        // session answer must still come back, marked degraded.
        let plan = FaultPlan::new(9).with_site(FaultSite::DataRead, SiteSchedule::error(1.0));
        let res = Arc::new(
            Resilience::new(Some(plan)).with_breaker(2, std::time::Duration::from_secs(3600)),
        );
        let faulty = Holistic::new(HolisticConfig::default()).with_resilience(res.clone());
        let mut voice = InstantVoice::default();
        let outcome = s.vocalize_with(&faulty, &mut voice).unwrap();
        assert!(outcome.stats.degraded, "dead source must mark the answer degraded");
        assert_eq!(outcome.stats.rows_read, 0);
        assert_eq!(res.stats().snapshot().degraded_answers, 1);
        // The same session state with inert resilience stays clean.
        let clean = Holistic::new(HolisticConfig::default())
            .with_resilience(Arc::new(Resilience::default()));
        let outcome = s.vocalize_with(&clean, &mut voice).unwrap();
        assert!(!outcome.stats.degraded);
    }
}
