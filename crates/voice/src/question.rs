//! Full-question parsing (paper Example 1.1).
//!
//! The paper's introductory interaction translates *"How does the flight
//! cancellation probability in New York depend on flight date and start
//! airport?"* into `SELECT avg(cp) FROM table WHERE airportState='New
//! York' GROUP BY flightSeason, airportCity` via "a simple, keyword-based
//! method". This module implements that translation:
//!
//! * member phrases mentioned anywhere become filters ("in New York");
//! * dimensions mentioned after a dependence marker ("depend on …",
//!   "by …", "against …") become breakdowns;
//! * a grouping level is chosen per dimension: an explicitly named level
//!   wins; a dimension that also carries a filter groups one level below
//!   the filter (state filter → city breakdown, as in the example);
//!   otherwise the coarsest level is used;
//! * aggregation keywords pick AVG / SUM / COUNT (default AVG — measures
//!   like "probability" are averages).

use voxolap_data::dimension::LevelId;
use voxolap_data::schema::Schema;
use voxolap_engine::error::EngineError;
use voxolap_engine::query::{AggFct, Query};

use crate::parser::ParseError;

/// Errors from question parsing.
#[derive(Debug)]
pub enum QuestionError {
    /// No dimension to break the result down by was recognized.
    Parse(ParseError),
    /// The recognized pieces did not form a valid query.
    InvalidQuery(EngineError),
}

impl std::fmt::Display for QuestionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuestionError::Parse(e) => write!(f, "{e}"),
            QuestionError::InvalidQuery(e) => write!(f, "question maps to invalid query: {e}"),
        }
    }
}

impl std::error::Error for QuestionError {}

/// Translate a full analytical question into a query.
pub fn parse_question(schema: &Schema, question: &str) -> Result<Query, QuestionError> {
    let text = question.to_lowercase();

    // Aggregation function from keywords.
    let fct = if text.contains("how many") || text.contains("number of") || text.contains("count") {
        AggFct::Count
    } else if text.contains("total") || text.contains("sum of") {
        AggFct::Sum
    } else {
        AggFct::Avg
    };

    // Filters: longest-phrase member mentions, at most one per dimension.
    let mut filters = Vec::new();
    for (dim_id, d) in schema.dims() {
        let mut best: Option<(voxolap_data::MemberId, usize)> = None;
        for mi in 1..d.member_count() {
            let m = voxolap_data::MemberId(mi as u32);
            let phrase = d.member(m).phrase.to_lowercase();
            if text.contains(&phrase) && best.is_none_or(|(_, l)| phrase.len() > l) {
                best = Some((m, phrase.len()));
            }
        }
        if let Some((m, _)) = best {
            filters.push((dim_id, m));
        }
    }

    // Breakdown dimensions: everything after the dependence marker.
    let tail = ["depend on", "depends on", "broken down by", "by dimension", " against ", " by "]
        .iter()
        .filter_map(|marker| text.find(marker).map(|i| &text[i + marker.len()..]))
        .next()
        .unwrap_or(&text);

    let mut groupings: Vec<(voxolap_data::DimId, LevelId)> = Vec::new();
    for (dim_id, d) in schema.dims() {
        // An explicitly named level wins — but a level name that only
        // occurs inside the dimension's own name (the "airport" level of
        // the "start airport" dimension) is a dimension mention, not a
        // level mention, so scan with dimension names blanked out.
        let mut tail_wo_dims = tail.to_string();
        for (_, other) in schema.dims() {
            tail_wo_dims = tail_wo_dims.replace(&other.name().to_lowercase(), " ");
        }
        let mut level = None;
        for li in 1..d.level_count() {
            let name = d.level_name(LevelId(li as u8)).to_lowercase();
            if tail_wo_dims.contains(&name) {
                level = Some(LevelId(li as u8));
            }
        }
        // A dimension-name mention groups at a default level.
        if level.is_none() && tail.contains(&d.name().to_lowercase()) {
            let filter_level =
                filters.iter().find(|&&(fd, _)| fd == dim_id).map(|&(_, m)| d.member(m).level);
            level = Some(match filter_level {
                // One level below the filter (state -> city), capped at
                // the leaf level.
                Some(fl) if fl.index() + 1 < d.level_count() => LevelId(fl.0 + 1),
                Some(fl) => fl,
                None => LevelId(1),
            });
        }
        if let Some(l) = level {
            groupings.push((dim_id, l));
        }
    }

    if groupings.is_empty() {
        return Err(QuestionError::Parse(ParseError { input: question.to_string() }));
    }

    // Measure selection: the mentioned measure name wins (longest match);
    // the primary measure otherwise.
    let mut measure = voxolap_data::schema::MeasureId::PRIMARY;
    let mut best_len = 0usize;
    for (i, m) in schema.measures().iter().enumerate() {
        let name = m.name.to_lowercase();
        if text.contains(&name) && name.len() > best_len {
            measure = voxolap_data::schema::MeasureId(i as u8);
            best_len = name.len();
        }
    }

    // Drop filters that sit at or below their dimension's grouping level
    // only if they'd invalidate the query (filter deeper than grouping).
    let mut b = Query::builder(fct).measure(measure);
    for &(d, l) in &groupings {
        b = b.group_by(d, l);
    }
    for &(d, m) in &filters {
        let too_deep = groupings
            .iter()
            .any(|&(gd, gl)| gd == d && schema.dimension(d).member(m).level.index() > gl.index());
        if !too_deep {
            b = b.filter(d, m);
        }
    }
    b.build(schema).map_err(QuestionError::InvalidQuery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;

    #[test]
    fn example_1_1_translates_as_in_the_paper() {
        // "How does the flight cancellation probability in New York depend
        // on flight date and start airport?"
        // -> AVG, WHERE state = New York, GROUP BY season, city.
        let schema = FlightsConfig::schema();
        let q = parse_question(
            &schema,
            "How does the flight cancellation probability in New York \
             depend on flight date and start airport?",
        )
        .unwrap();
        assert_eq!(q.fct(), AggFct::Avg);
        // Filter on the airport dimension at state level.
        let (fd, fm) = q.filters()[0];
        assert_eq!(fd, DimId(0));
        assert_eq!(schema.dimension(fd).member(fm).phrase, "New York");
        // Breakdown: airport at city level (one below the state filter),
        // date at season level (its coarsest).
        let by: Vec<(DimId, LevelId)> = q.group_by().to_vec();
        assert!(by.contains(&(DimId(0), LevelId(3))), "city breakdown: {by:?}");
        assert!(by.contains(&(DimId(1), LevelId(1))), "season breakdown: {by:?}");
    }

    #[test]
    fn count_questions_pick_count() {
        let schema = FlightsConfig::schema();
        let q = parse_question(&schema, "how many flights by airline?").unwrap();
        assert_eq!(q.fct(), AggFct::Count);
        assert_eq!(q.group_by(), &[(DimId(2), LevelId(1))]);
    }

    #[test]
    fn explicit_level_mentions_win() {
        let schema = FlightsConfig::schema();
        let q =
            parse_question(&schema, "how does the cancellation probability depend on the month?")
                .unwrap();
        assert_eq!(q.group_by(), &[(DimId(1), LevelId(2))]);
    }

    #[test]
    fn salary_question() {
        let schema = SalaryConfig::schema(320);
        let q = parse_question(
            &schema,
            "how does the mid-career salary depend on college location \
             and start salary?",
        )
        .unwrap();
        assert_eq!(q.fct(), AggFct::Avg);
        assert_eq!(q.group_by().len(), 2);
        // Both dimensions at their coarsest levels.
        assert!(q.group_by().contains(&(DimId(0), LevelId(1))));
        assert!(q.group_by().contains(&(DimId(1), LevelId(1))));
    }

    #[test]
    fn measure_mention_selects_the_column() {
        use voxolap_data::schema::MeasureId;
        let schema = FlightsConfig::schema();
        let q = parse_question(
            &schema,
            "how does the departure delay in minutes depend on region and season?",
        )
        .unwrap();
        assert_eq!(q.measure(), MeasureId(1));
        assert_eq!(q.group_by().len(), 2);
        // Without a mention the primary measure is aggregated.
        let q = parse_question(&schema, "cancellation probability by region").unwrap();
        assert_eq!(q.measure(), MeasureId::PRIMARY);
    }

    #[test]
    fn question_without_breakdown_errors() {
        let schema = FlightsConfig::schema();
        let err = parse_question(&schema, "tell me a story").unwrap_err();
        assert!(matches!(err, QuestionError::Parse(_)));
    }

    #[test]
    fn filter_only_mention_does_not_group() {
        // "in Winter" filters; "by region" groups.
        let schema = FlightsConfig::schema();
        let q =
            parse_question(&schema, "what is the cancellation probability in winter by region?")
                .unwrap();
        assert_eq!(q.group_by(), &[(DimId(0), LevelId(1))]);
        let (fd, fm) = q.filters()[0];
        assert_eq!(fd, DimId(1));
        assert_eq!(schema.dimension(fd).member(fm).phrase, "Winter");
    }
}
