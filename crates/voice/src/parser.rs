//! Keyword-based voice-input parsing.
//!
//! The paper's input component is deliberately simple: "users can drill
//! down, roll up, and add or remove dimensions in the OLAP result by
//! mentioning related keywords" and "can request help to obtain all
//! available keywords" (§5.2). This module resolves free-form text against
//! a schema's dimension names, level names, and member phrases.

use std::fmt;

use voxolap_data::dimension::{LevelId, MemberId};
use voxolap_data::schema::{DimId, Schema};
use voxolap_engine::query::AggFct;

/// A parsed user command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Read out the available keywords.
    Help,
    /// End the session.
    Quit,
    /// Switch the aggregation function.
    SetFct(AggFct),
    /// Group by one more level of detail in a dimension (or start grouping
    /// it at its coarsest level).
    DrillDown(DimId),
    /// Group one level coarser (or stop grouping the dimension).
    RollUp(DimId),
    /// Break results down by a specific level.
    GroupBy(DimId, LevelId),
    /// Remove a dimension from the breakdown (and any filter on it).
    Remove(DimId),
    /// Restrict the scope to one member.
    Filter(DimId, MemberId),
    /// Drop all filters.
    ClearFilters,
}

/// Parse failure: no keyword matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The unrecognized input.
    pub input: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "did not understand: {:?} (say \"help\" for keywords)", self.input)
    }
}

impl std::error::Error for ParseError {}

/// Find a dimension whose name occurs in `text` (case-insensitive).
fn find_dimension(schema: &Schema, text: &str) -> Option<DimId> {
    schema.dims().find(|(_, d)| text.contains(&d.name().to_lowercase())).map(|(id, _)| id)
}

/// Find a level (of any dimension) whose name occurs in `text`, together
/// with the matched length. Longer names win so "rough start salary" beats
/// the dimension "start salary".
fn find_level(schema: &Schema, text: &str) -> Option<(DimId, LevelId, usize)> {
    let mut best: Option<(DimId, LevelId, usize)> = None;
    for (id, d) in schema.dims() {
        for li in 1..d.level_count() {
            let level = LevelId(li as u8);
            let name = d.level_name(level).to_lowercase();
            if text.contains(&name) && best.is_none_or(|(_, _, l)| name.len() > l) {
                best = Some((id, level, name.len()));
            }
        }
    }
    best
}

/// Find a member (of any dimension) whose phrase occurs in `text`, together
/// with the matched length. Longest phrase wins ("the North East" over
/// "the North").
fn find_member(schema: &Schema, text: &str) -> Option<(DimId, MemberId, usize)> {
    let mut best: Option<(DimId, MemberId, usize)> = None;
    for (id, d) in schema.dims() {
        for mi in 1..d.member_count() {
            let m = MemberId(mi as u32);
            let phrase = d.member(m).phrase.to_lowercase();
            if text.contains(&phrase) && best.is_none_or(|(_, _, l)| phrase.len() > l) {
                best = Some((id, m, phrase.len()));
            }
        }
    }
    best
}

/// Parse one utterance against a schema.
///
/// Recognition order: explicit commands (help/quit/clear), aggregation
/// keywords, structural verbs (drill/roll/remove) with a dimension mention,
/// "break down"-style level mentions, then member mentions as filters.
pub fn parse(schema: &Schema, input: &str) -> Result<Command, ParseError> {
    let text = input.to_lowercase();
    let unrecognized = || ParseError { input: input.to_string() };

    if text.contains("help") {
        return Ok(Command::Help);
    }
    if text.contains("quit") || text.contains("exit") || text.contains("goodbye") {
        return Ok(Command::Quit);
    }
    if text.contains("clear filter") || text.contains("remove filter") {
        return Ok(Command::ClearFilters);
    }
    if text.contains("drill down") || text.contains("drill into") {
        return find_dimension(schema, &text).map(Command::DrillDown).ok_or_else(unrecognized);
    }
    if text.contains("roll up") {
        return find_dimension(schema, &text).map(Command::RollUp).ok_or_else(unrecognized);
    }
    if text.contains("remove") || text.contains("without") {
        return find_dimension(schema, &text).map(Command::Remove).ok_or_else(unrecognized);
    }
    if text.contains("break down by") || text.contains("group by") || text.contains(" by ") {
        if let Some((d, l, _)) = find_level(schema, &text) {
            return Ok(Command::GroupBy(d, l));
        }
    }
    // Aggregation function switches.
    if text.contains("how many") || text.contains("count") || text.contains("number of") {
        return Ok(Command::SetFct(AggFct::Count));
    }
    if text.contains("total") || text.contains("sum") {
        return Ok(Command::SetFct(AggFct::Sum));
    }
    if text.contains("average") || text.contains("mean") {
        return Ok(Command::SetFct(AggFct::Avg));
    }
    // A bare level mention groups; a member mention filters. When both
    // match ("new york city" contains the level name "city"), the longer
    // match wins.
    let level = find_level(schema, &text);
    let member = find_member(schema, &text);
    match (level, member) {
        (Some((d, l, ll)), Some((_, _, ml))) if ll >= ml => Ok(Command::GroupBy(d, l)),
        (_, Some((d, m, _))) => Ok(Command::Filter(d, m)),
        (Some((d, l, _)), None) => Ok(Command::GroupBy(d, l)),
        (None, None) => Err(unrecognized()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::flights::FlightsConfig;

    fn schema() -> Schema {
        FlightsConfig::schema()
    }

    #[test]
    fn parses_control_commands() {
        let s = schema();
        assert_eq!(parse(&s, "help").unwrap(), Command::Help);
        assert_eq!(parse(&s, "please HELP me").unwrap(), Command::Help);
        assert_eq!(parse(&s, "quit").unwrap(), Command::Quit);
        assert_eq!(parse(&s, "clear filters").unwrap(), Command::ClearFilters);
    }

    #[test]
    fn parses_aggregation_switches() {
        let s = schema();
        assert_eq!(parse(&s, "how many flights").unwrap(), Command::SetFct(AggFct::Count));
        assert_eq!(parse(&s, "show the total").unwrap(), Command::SetFct(AggFct::Sum));
        assert_eq!(parse(&s, "back to the average").unwrap(), Command::SetFct(AggFct::Avg));
    }

    #[test]
    fn parses_structure_commands() {
        let s = schema();
        assert_eq!(
            parse(&s, "drill down into the start airport").unwrap(),
            Command::DrillDown(DimId(0))
        );
        assert_eq!(parse(&s, "roll up the flight date").unwrap(), Command::RollUp(DimId(1)));
        assert_eq!(parse(&s, "remove the airline").unwrap(), Command::Remove(DimId(2)));
    }

    #[test]
    fn parses_group_by_level() {
        let s = schema();
        assert_eq!(
            parse(&s, "break down by region").unwrap(),
            Command::GroupBy(DimId(0), LevelId(1))
        );
        assert_eq!(
            parse(&s, "break down by season").unwrap(),
            Command::GroupBy(DimId(1), LevelId(1))
        );
        assert_eq!(parse(&s, "by month please").unwrap(), Command::GroupBy(DimId(1), LevelId(2)));
        // Bare level mention works too.
        assert_eq!(parse(&s, "state").unwrap(), Command::GroupBy(DimId(0), LevelId(2)));
    }

    #[test]
    fn parses_member_filters() {
        let s = schema();
        let airport = s.dimension(DimId(0));
        let ne = airport.member_by_phrase("the North East").unwrap();
        assert_eq!(parse(&s, "only the north east").unwrap(), Command::Filter(DimId(0), ne));
        let date = s.dimension(DimId(1));
        let winter = date.member_by_phrase("Winter").unwrap();
        assert_eq!(parse(&s, "winter").unwrap(), Command::Filter(DimId(1), winter));
    }

    #[test]
    fn longest_member_phrase_wins() {
        let s = schema();
        let airport = s.dimension(DimId(0));
        // "New York City" (city) contains "New York" (state): the longer
        // phrase must win.
        let nyc = airport.member_by_phrase("New York City").unwrap();
        assert_eq!(
            parse(&s, "flights from new york city").unwrap(),
            Command::Filter(DimId(0), nyc)
        );
    }

    #[test]
    fn unknown_input_errors_with_hint() {
        let s = schema();
        let err = parse(&s, "play some jazz").unwrap_err();
        assert!(err.to_string().contains("help"));
    }

    #[test]
    fn drill_without_dimension_errors() {
        let s = schema();
        assert!(parse(&s, "drill down").is_err());
    }
}
