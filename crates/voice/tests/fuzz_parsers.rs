//! Robustness: the keyword and question parsers must never panic on
//! arbitrary input — they sit directly behind user-facing surfaces
//! (repl, HTTP API). Seeded random fuzzing, 256 cases per property
//! (mirroring the old proptest configuration).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use voxolap_data::flights::FlightsConfig;
use voxolap_voice::parser::parse;
use voxolap_voice::question::parse_question;

const CASES: usize = 256;

/// Arbitrary unicode-ish text: mixes ASCII, punctuation, digits, and a
/// few multi-byte codepoints, which is what reaches the parsers in
/// practice (and what tends to break naive byte indexing).
fn arb_text(gen: &mut StdRng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'e', 'i', 'o', 'r', 's', 't', 'n', 'w', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ',
        ' ', ' ', '\t', '\n', '.', ',', '?', '!', '"', '\'', '-', '_', '/', '\\', '%', 'é', 'ß',
        '漢', '😀', '\u{0}', '\u{7f}',
    ];
    let len = gen.gen_range(0..=max_len);
    (0..len).map(|_| *POOL.choose(gen).unwrap()).collect()
}

#[test]
fn keyword_parser_never_panics() {
    let schema = FlightsConfig::schema();
    let mut gen = StdRng::seed_from_u64(0xf022_0001);
    for _ in 0..CASES {
        let input = arb_text(&mut gen, 120);
        let _ = parse(&schema, &input);
    }
}

#[test]
fn question_parser_never_panics() {
    let schema = FlightsConfig::schema();
    let mut gen = StdRng::seed_from_u64(0xf022_0002);
    for _ in 0..CASES {
        let input = arb_text(&mut gen, 160);
        let _ = parse_question(&schema, &input);
    }
}

#[test]
fn keyword_parser_handles_keyword_soup() {
    const WORDS: &[&str] = &[
        "break", "down", "by", "region", "drill", "roll", "up", "remove", "winter", "airline",
        "help", "total", "new", "york", "city", "month",
    ];
    let schema = FlightsConfig::schema();
    let mut gen = StdRng::seed_from_u64(0xf022_0003);
    for _ in 0..CASES {
        let n = gen.gen_range(0..8);
        let words: Vec<&str> = (0..n).map(|_| *WORDS.choose(&mut gen).unwrap()).collect();
        let input = words.join(" ");
        // Any combination parses or errors; never panics, and a parsed
        // command is well-formed by type.
        let _ = parse(&schema, &input);
    }
}
