//! Robustness: the keyword and question parsers must never panic on
//! arbitrary input — they sit directly behind user-facing surfaces
//! (repl, HTTP API).

use proptest::prelude::*;
use voxolap_data::flights::FlightsConfig;
use voxolap_voice::parser::parse;
use voxolap_voice::question::parse_question;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn keyword_parser_never_panics(input in ".{0,120}") {
        let schema = FlightsConfig::schema();
        let _ = parse(&schema, &input);
    }

    #[test]
    fn question_parser_never_panics(input in ".{0,160}") {
        let schema = FlightsConfig::schema();
        let _ = parse_question(&schema, &input);
    }

    #[test]
    fn keyword_parser_handles_keyword_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("break"), Just("down"), Just("by"), Just("region"),
                Just("drill"), Just("roll"), Just("up"), Just("remove"),
                Just("winter"), Just("airline"), Just("help"), Just("total"),
                Just("new"), Just("york"), Just("city"), Just("month"),
            ],
            0..8,
        ),
    ) {
        let schema = FlightsConfig::schema();
        let input = words.join(" ");
        // Any combination parses or errors; never panics, and a parsed
        // command is well-formed by type.
        let _ = parse(&schema, &input);
    }
}
