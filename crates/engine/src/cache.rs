//! The sample cache of paper Algorithm 3.
//!
//! Rows stream from the database in random order; rows within the current
//! query scope are cached, indexed by the aggregate they belong to. The
//! cache supplies:
//!
//! * `size(a)` — number of cached entries per aggregate (`CA.SIZE`),
//!   maintained during insertion so it costs O(1);
//! * `nr_read()` — total rows considered, including out-of-scope ones
//!   (`CA.NRREAD`), the denominator of the count estimator;
//! * `resample(a)` — a fixed-size uniform subsample of one aggregate's
//!   cached entries (`CA.RESAMPLE`), keeping estimate cost constant as the
//!   cache fills;
//! * unbiased estimators for COUNT, SUM, and AVG (`CacheEstimate`);
//! * eligible-aggregate tracking for `PickAggregate` — for AVG only
//!   aggregates with at least one cached row are eligible, for COUNT/SUM
//!   *every* aggregate is (an empty bucket carries information once related
//!   to `nr_read`).

use rand::Rng;

use voxolap_data::dimension::MemberId;

use crate::query::{AggFct, AggIdx, ResultLayout};

/// Default size of the fixed resample (paper §4.3: "we use a fixed size of
/// 10 samples").
pub const DEFAULT_RESAMPLE_SIZE: usize = 10;

/// Reusable buffers for [`SampleCache::resample_into`] /
/// [`SampleCache::estimate_with`]: the planner's inner loop calls these
/// thousands of times per second, and reusing one scratch keeps the hot
/// path allocation-free (the buffers grow to the working size once and are
/// recycled).
#[derive(Debug, Clone, Default)]
pub struct ResampleScratch {
    /// Partial-Fisher–Yates index pool over the bucket.
    pub(crate) indices: Vec<u32>,
    /// The drawn resample values.
    pub(crate) out: Vec<f64>,
}

impl ResampleScratch {
    /// A fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Draw `amount` values from `bucket` uniformly without replacement into
/// `scratch.out` (all of them when the bucket is smaller), via a partial
/// Fisher–Yates shuffle over a reused index pool. No allocation after the
/// scratch reaches steady-state capacity.
pub(crate) fn resample_into_scratch<R: Rng + ?Sized>(
    bucket: &[f64],
    amount: usize,
    rng: &mut R,
    scratch: &mut ResampleScratch,
) {
    scratch.out.clear();
    if bucket.len() <= amount {
        scratch.out.extend_from_slice(bucket);
        return;
    }
    let ix = &mut scratch.indices;
    ix.clear();
    ix.extend(0..bucket.len() as u32);
    for i in 0..amount {
        let j = rng.gen_range(i..bucket.len());
        ix.swap(i, j);
        scratch.out.push(bucket[ix[i] as usize]);
    }
}

/// Combine the count estimate `e_c` with a resample `v` into the full
/// estimate triple (shared by the sequential and sharded caches).
pub(crate) fn estimate_from_resample(e_c: f64, v: &[f64]) -> CacheEstimate {
    let mean = if v.is_empty() { f64::NAN } else { v.iter().sum::<f64>() / v.len() as f64 };
    let e_s = if v.is_empty() { 0.0 } else { e_c * mean };
    CacheEstimate { count: e_c, sum: e_s, avg: mean }
}

/// A cache-based estimate of one aggregate's count, sum, and average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEstimate {
    /// Estimated row count of the aggregate's scope (`e_C`).
    pub count: f64,
    /// Estimated measure sum (`e_S`).
    pub sum: f64,
    /// Estimated average (`e_A`); `NaN` when no entry is cached.
    pub avg: f64,
}

impl CacheEstimate {
    /// The estimate for a given aggregation function.
    pub fn value(&self, fct: AggFct) -> f64 {
        match fct {
            AggFct::Count => self.count,
            AggFct::Sum => self.sum,
            AggFct::Avg => self.avg,
        }
    }
}

/// Sample cache for one query (see module docs).
#[derive(Debug, Clone)]
pub struct SampleCache {
    buckets: Vec<Vec<f64>>,
    /// Rows offered to each bucket (≥ bucket length once eviction kicks
    /// in); drives the reservoir-sampling replacement probability and the
    /// per-aggregate count statistics.
    offered: Vec<u64>,
    /// Aggregates with ≥ 1 cached entry, for O(1) uniform random picks.
    nonempty: Vec<AggIdx>,
    nr_read: u64,
    nr_rows_total: u64,
    resample_size: usize,
    /// Optional cap on entries kept per bucket. The paper notes that
    /// "old cache entries can be discarded periodically" to bound memory;
    /// we implement the statistically clean variant — reservoir sampling —
    /// so a capped bucket is always a uniform sample of the rows offered
    /// to it.
    bucket_capacity: Option<usize>,
    /// Deterministic RNG for reservoir replacement decisions.
    evict_rng: rand::rngs::StdRng,
    /// Running statistics over the whole query scope, for baseline
    /// candidate generation.
    scope_count: u64,
    scope_sum: f64,
}

impl SampleCache {
    /// Create an empty cache for a query with `n_aggregates` result fields
    /// over a table of `nr_rows_total` rows.
    pub fn new(n_aggregates: usize, nr_rows_total: u64) -> Self {
        use rand::SeedableRng;
        SampleCache {
            buckets: vec![Vec::new(); n_aggregates],
            offered: vec![0; n_aggregates],
            nonempty: Vec::new(),
            nr_read: 0,
            nr_rows_total,
            resample_size: DEFAULT_RESAMPLE_SIZE,
            bucket_capacity: None,
            evict_rng: rand::rngs::StdRng::seed_from_u64(0x5eed_cafe),
            scope_count: 0,
            scope_sum: 0.0,
        }
    }

    /// Override the fixed resample size (default
    /// [`DEFAULT_RESAMPLE_SIZE`]).
    pub fn with_resample_size(mut self, size: usize) -> Self {
        assert!(size > 0, "resample size must be positive");
        self.resample_size = size;
        self
    }

    /// Bound memory: keep at most `capacity` entries per aggregate bucket,
    /// maintained as a uniform reservoir sample of all rows offered.
    pub fn with_bucket_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "bucket capacity must be positive");
        self.bucket_capacity = Some(capacity);
        self
    }

    /// Observe one streamed row: `agg` is its aggregate (or `None` when the
    /// row falls outside the query scope), `value` its measure.
    pub fn observe(&mut self, agg: Option<AggIdx>, value: f64) {
        use rand::Rng;
        self.nr_read += 1;
        if let Some(a) = agg {
            let bucket = &mut self.buckets[a as usize];
            if bucket.is_empty() {
                self.nonempty.push(a);
            }
            self.offered[a as usize] += 1;
            match self.bucket_capacity {
                Some(cap) if bucket.len() >= cap => {
                    // Reservoir replacement: the new row displaces a random
                    // cached one with probability cap / offered.
                    let offered = self.offered[a as usize];
                    let slot = self.evict_rng.gen_range(0..offered);
                    if (slot as usize) < cap {
                        bucket[slot as usize] = value;
                    }
                }
                _ => bucket.push(value),
            }
            self.scope_count += 1;
            self.scope_sum += value;
        }
    }

    /// Observe a raw fact row, resolving its aggregate through `layout`.
    pub fn observe_row(&mut self, layout: &ResultLayout, members: &[MemberId], value: f64) {
        self.observe(layout.agg_of_row(members), value);
    }

    /// Warm-start a fresh cache from rows another query sampled over the
    /// **same scope** (same measure, same filters, same seeded scan): each
    /// cached in-scope row is re-bucketed through this query's `layout`,
    /// then `nr_read` is set to the scan-prefix length the rows were drawn
    /// from (which counts out-of-scope rows too). Because the donor's rows
    /// are a prefix of the same seeded pseudo-random order, the seeded cache
    /// is bit-identical to one that had streamed that prefix itself, and the
    /// uniform-sample invariant of Algorithm 3 is preserved.
    ///
    /// Must be called on a cache that has not observed any row yet.
    pub fn seed_rows<'r, I>(&mut self, layout: &ResultLayout, rows: I, nr_read: u64)
    where
        I: IntoIterator<Item = (&'r [MemberId], f64)>,
    {
        assert_eq!(self.nr_read, 0, "seed_rows requires a fresh cache");
        let mut in_scope = 0u64;
        for (members, value) in rows {
            self.observe(layout.agg_of_row(members), value);
            in_scope += 1;
        }
        debug_assert!(nr_read >= in_scope, "prefix shorter than its in-scope rows");
        self.nr_read = nr_read;
    }

    /// The exact per-aggregate `(counts, sums)` of the query, available
    /// once the scanner streamed the **whole table** into an **uncapped**
    /// cache: every in-scope row was offered exactly once, so `offered` is
    /// the exact count and each bucket's sum the exact sum. `None` while
    /// the scan is partial or rows may have been evicted.
    pub fn exact_result(&self) -> Option<(Vec<u64>, Vec<f64>)> {
        if self.bucket_capacity.is_some() || self.nr_read < self.nr_rows_total {
            return None;
        }
        let sums = self.buckets.iter().map(|b| b.iter().sum()).collect();
        Some((self.offered.clone(), sums))
    }

    /// Number of cached entries for one aggregate (`CA.SIZE`).
    pub fn size(&self, agg: AggIdx) -> usize {
        self.buckets[agg as usize].len()
    }

    /// Total rows ever offered to one aggregate's bucket. Equal to
    /// [`SampleCache::size`] without eviction; with a bucket capacity this
    /// keeps counting, so count estimates stay unbiased ("the cache keeps
    /// track of counts during insertions").
    pub fn seen(&self, agg: AggIdx) -> u64 {
        self.offered[agg as usize]
    }

    /// Total rows considered so far (`CA.NRREAD`).
    pub fn nr_read(&self) -> u64 {
        self.nr_read
    }

    /// Total rows of the underlying table (`nrRows` in Algorithm 3).
    pub fn nr_rows_total(&self) -> u64 {
        self.nr_rows_total
    }

    /// Number of aggregates with at least one cached entry.
    pub fn nonempty_count(&self) -> usize {
        self.nonempty.len()
    }

    /// Pick a random aggregate eligible for speech evaluation
    /// (paper `PickAggregate`): uniform over all aggregates for COUNT/SUM,
    /// uniform over non-empty ones for AVG. Returns `None` when nothing is
    /// eligible yet.
    pub fn pick_aggregate<R: Rng + ?Sized>(&self, fct: AggFct, rng: &mut R) -> Option<AggIdx> {
        match fct {
            AggFct::Count | AggFct::Sum => {
                if self.buckets.is_empty() {
                    None
                } else {
                    Some(rng.gen_range(0..self.buckets.len()) as AggIdx)
                }
            }
            AggFct::Avg => {
                if self.nonempty.is_empty() {
                    None
                } else {
                    Some(self.nonempty[rng.gen_range(0..self.nonempty.len())])
                }
            }
        }
    }

    /// Fixed-size uniform subsample of one aggregate's cached entries
    /// (`CA.RESAMPLE`). Returns all entries if fewer than the resample size
    /// are cached.
    ///
    /// Allocates a fresh `Vec` per call; the planner's hot path uses
    /// [`SampleCache::resample_into`] with a reused scratch instead.
    pub fn resample<R: Rng + ?Sized>(&self, agg: AggIdx, rng: &mut R) -> Vec<f64> {
        let mut scratch = ResampleScratch::new();
        self.resample_into(agg, rng, &mut scratch);
        scratch.out
    }

    /// Allocation-free [`SampleCache::resample`]: draws into `scratch` and
    /// returns the drawn slice.
    pub fn resample_into<'s, R: Rng + ?Sized>(
        &self,
        agg: AggIdx,
        rng: &mut R,
        scratch: &'s mut ResampleScratch,
    ) -> &'s [f64] {
        resample_into_scratch(&self.buckets[agg as usize], self.resample_size, rng, scratch);
        &scratch.out
    }

    /// Cache-based estimate for one aggregate (paper `CacheEstimate`):
    ///
    /// * `e_C = nrRows · size(a) / nrRead`
    /// * `e_S = e_C · mean(V)` over a fixed-size resample `V`
    /// * `e_A = e_S / e_C = mean(V)`
    ///
    /// Returns `None` before any row was read.
    pub fn estimate<R: Rng + ?Sized>(&self, agg: AggIdx, rng: &mut R) -> Option<CacheEstimate> {
        let mut scratch = ResampleScratch::new();
        self.estimate_with(agg, rng, &mut scratch)
    }

    /// [`SampleCache::estimate`] with a caller-provided scratch, keeping
    /// the per-iteration planner loop allocation-free.
    pub fn estimate_with<R: Rng + ?Sized>(
        &self,
        agg: AggIdx,
        rng: &mut R,
        scratch: &mut ResampleScratch,
    ) -> Option<CacheEstimate> {
        if self.nr_read == 0 {
            return None;
        }
        let e_c = self.nr_rows_total as f64 * self.seen(agg) as f64 / self.nr_read as f64;
        let v = self.resample_into(agg, rng, scratch);
        Some(estimate_from_resample(e_c, v))
    }

    /// Estimate of the query-scope-wide aggregate value, used to seed
    /// baseline speech candidates before fine-grained samples exist.
    ///
    /// Returns `None` before any in-scope row was cached (for AVG) or before
    /// any row was read (COUNT/SUM).
    pub fn overall_estimate(&self, fct: AggFct) -> Option<f64> {
        if self.nr_read == 0 {
            return None;
        }
        let e_c = self.nr_rows_total as f64 * self.scope_count as f64 / self.nr_read as f64;
        match fct {
            AggFct::Count => Some(e_c),
            AggFct::Sum => {
                if self.scope_count == 0 {
                    Some(0.0)
                } else {
                    Some(e_c * self.scope_sum / self.scope_count as f64)
                }
            }
            AggFct::Avg => {
                if self.scope_count == 0 {
                    None
                } else {
                    Some(self.scope_sum / self.scope_count as f64)
                }
            }
        }
    }

    /// Normal-approximation confidence interval for one aggregate's average
    /// at `z` standard errors (e.g. `z = 1.96` for 95 %), based on all
    /// cached entries. `None` with fewer than two entries.
    ///
    /// Used by the §4.4 uncertainty extensions; "the way in which confidence
    /// bounds are calculated is not specific to vocalization".
    pub fn confidence_interval(&self, agg: AggIdx, z: f64) -> Option<(f64, f64)> {
        let bucket = &self.buckets[agg as usize];
        if bucket.len() < 2 {
            return None;
        }
        let n = bucket.len() as f64;
        let mean = bucket.iter().sum::<f64>() / n;
        let var = bucket.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let se = (var / n).sqrt();
        Some((mean - z * se, mean + z * se))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;

    use crate::exact::evaluate;
    use crate::query::Query;

    fn salary_setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn fill_cache(table: &voxolap_data::Table, q: &Query, rows: usize, seed: u64) -> SampleCache {
        let mut cache = SampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let mut scan = table.scan_shuffled(seed);
        for _ in 0..rows {
            match scan.next_row() {
                Some(r) => {
                    let agg = q.layout().agg_of_row(r.members);
                    cache.observe(agg, r.value);
                }
                None => break,
            }
        }
        cache
    }

    #[test]
    fn sizes_and_nr_read_track_insertions() {
        let (table, q) = salary_setup();
        let cache = fill_cache(&table, &q, 100, 7);
        assert_eq!(cache.nr_read(), 100);
        let total: usize = (0..q.n_aggregates() as u32).map(|a| cache.size(a)).sum();
        assert_eq!(total, 100, "salary query scope covers the whole table");
    }

    #[test]
    fn estimates_converge_to_exact_values() {
        let (table, q) = salary_setup();
        let exact = evaluate(&q, &table);
        let cache = fill_cache(&table, &q, 320, 3); // full table cached
        let mut rng = StdRng::seed_from_u64(1);
        for agg in 0..q.n_aggregates() as u32 {
            let est = cache.estimate(agg, &mut rng).unwrap();
            // Count estimate is exact with full scan.
            assert!((est.count - exact.count(agg) as f64).abs() < 1e-6);
            // Average from a resample of 10 is noisy but in range.
            assert!((est.avg - exact.value(agg)).abs() < 15.0);
        }
    }

    #[test]
    fn count_estimator_is_unbiased_over_seeds() {
        let (table, q) = salary_setup();
        let exact = evaluate(&q, &table);
        let agg = 0u32;
        let mut acc = 0.0;
        let n_seeds = 40;
        for seed in 0..n_seeds {
            let cache = fill_cache(&table, &q, 64, seed);
            acc += cache.nr_rows_total() as f64 * cache.size(agg) as f64 / cache.nr_read() as f64;
        }
        let mean_est = acc / n_seeds as f64;
        let truth = exact.count(agg) as f64;
        assert!(
            (mean_est - truth).abs() < truth * 0.25,
            "mean estimate {mean_est} vs exact {truth}"
        );
    }

    #[test]
    fn resample_is_capped_at_fixed_size() {
        let (table, q) = salary_setup();
        let cache = fill_cache(&table, &q, 320, 3);
        let mut rng = StdRng::seed_from_u64(5);
        for agg in 0..q.n_aggregates() as u32 {
            let v = cache.resample(agg, &mut rng);
            assert!(v.len() <= DEFAULT_RESAMPLE_SIZE);
            if cache.size(agg) >= DEFAULT_RESAMPLE_SIZE {
                assert_eq!(v.len(), DEFAULT_RESAMPLE_SIZE);
            } else {
                assert_eq!(v.len(), cache.size(agg));
            }
        }
    }

    #[test]
    fn pick_aggregate_avg_requires_cached_entries() {
        let (table, q) = salary_setup();
        let empty = SampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(empty.pick_aggregate(AggFct::Avg, &mut rng), None);
        // COUNT/SUM can pick any aggregate even with an empty cache.
        assert!(empty.pick_aggregate(AggFct::Count, &mut rng).is_some());

        let filled = fill_cache(&table, &q, 50, 9);
        let picked = filled.pick_aggregate(AggFct::Avg, &mut rng).unwrap();
        assert!(filled.size(picked) > 0);
    }

    #[test]
    fn pick_aggregate_is_uniform_over_nonempty() {
        let (table, q) = salary_setup();
        let cache = fill_cache(&table, &q, 320, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = vec![0usize; q.n_aggregates()];
        for _ in 0..8000 {
            let a = cache.pick_aggregate(AggFct::Avg, &mut rng).unwrap();
            hits[a as usize] += 1;
        }
        let nonempty = cache.nonempty_count();
        let expect = 8000.0 / nonempty as f64;
        for (a, &h) in hits.iter().enumerate() {
            if cache.size(a as u32) > 0 {
                assert!(
                    (h as f64 - expect).abs() < expect * 0.5,
                    "aggregate {a} picked {h} times, expected ~{expect}"
                );
            } else {
                assert_eq!(h, 0);
            }
        }
    }

    #[test]
    fn overall_estimate_tracks_scope_mean() {
        let (table, q) = salary_setup();
        let cache = fill_cache(&table, &q, 320, 3);
        let overall = cache.overall_estimate(AggFct::Avg).unwrap();
        let exact_mean: f64 = table.measure().iter().sum::<f64>() / table.row_count() as f64;
        assert!((overall - exact_mean).abs() < 1e-9, "full cache reproduces scope mean");
        // Count estimate equals table size with a full scan.
        assert!((cache.overall_estimate(AggFct::Count).unwrap() - 320.0).abs() < 1e-9);
    }

    #[test]
    fn overall_estimate_none_before_rows() {
        let cache = SampleCache::new(4, 100);
        assert_eq!(cache.overall_estimate(AggFct::Avg), None);
        assert_eq!(cache.overall_estimate(AggFct::Count), None);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let (table, q) = salary_setup();
        let small = fill_cache(&table, &q, 60, 3);
        let big = fill_cache(&table, &q, 320, 3);
        // Find an aggregate with entries in both caches.
        let agg = (0..q.n_aggregates() as u32)
            .find(|&a| small.size(a) >= 2 && big.size(a) > small.size(a))
            .expect("some aggregate grows");
        let (lo_s, hi_s) = small.confidence_interval(agg, 1.96).unwrap();
        let (lo_b, hi_b) = big.confidence_interval(agg, 1.96).unwrap();
        assert!(hi_b - lo_b < hi_s - lo_s, "more samples, tighter interval");
    }

    #[test]
    fn confidence_interval_needs_two_entries() {
        let cache = SampleCache::new(2, 10);
        assert_eq!(cache.confidence_interval(0, 1.96), None);
    }

    #[test]
    fn warm_started_cache_is_identical_to_cold_start_over_seeds() {
        // Property behind semantic-cache warm starts: re-bucketing a donor
        // query's logged in-scope rows (same scope, different group-by)
        // into a fresh cache must reproduce, bit for bit, the cache a cold
        // start would have built from the same seeded row prefix — hence
        // identical estimates under the same estimator RNG stream.
        let table = SalaryConfig::paper_scale().generate();
        let donor = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let target = Query::builder(AggFct::Avg)
            .group_by(DimId(1), LevelId(2))
            .build(table.schema())
            .unwrap();
        for seed in 0..20u64 {
            let prefix = 64 + (seed as usize) * 7;
            // Donor pass: stream the prefix, logging in-scope rows.
            let mut log: Vec<(Vec<MemberId>, f64)> = Vec::new();
            let mut scan = table.scan_shuffled(seed);
            for _ in 0..prefix {
                let Some(r) = scan.next_row() else { break };
                if donor.layout().agg_of_row(r.members).is_some() {
                    log.push((r.members.to_vec(), r.value));
                }
            }
            let nr_read = scan.rows_read() as u64;
            // Cold target cache over the same prefix.
            let cold = fill_cache(&table, &target, prefix, seed);
            // Warm target cache seeded from the donor's log.
            let mut warm = SampleCache::new(target.n_aggregates(), table.row_count() as u64);
            warm.seed_rows(target.layout(), log.iter().map(|(m, v)| (m.as_slice(), *v)), nr_read);
            assert_eq!(warm.nr_read(), cold.nr_read());
            assert_eq!(warm.nonempty_count(), cold.nonempty_count());
            for agg in 0..target.n_aggregates() as u32 {
                assert_eq!(warm.size(agg), cold.size(agg), "seed {seed} agg {agg}");
                assert_eq!(warm.seen(agg), cold.seen(agg));
                let mut rng_w = StdRng::seed_from_u64(seed ^ 0xabc);
                let mut rng_c = StdRng::seed_from_u64(seed ^ 0xabc);
                assert_eq!(
                    warm.estimate(agg, &mut rng_w),
                    cold.estimate(agg, &mut rng_c),
                    "estimates identical in distribution (same RNG stream)"
                );
            }
            assert_eq!(warm.overall_estimate(AggFct::Avg), cold.overall_estimate(AggFct::Avg));
        }
    }

    #[test]
    fn exact_result_requires_full_uncapped_scan() {
        let (table, q) = salary_setup();
        let partial = fill_cache(&table, &q, 100, 3);
        assert!(partial.exact_result().is_none(), "partial scan is not exact");
        let full = fill_cache(&table, &q, 320, 3);
        let (counts, sums) = full.exact_result().expect("full uncapped scan is exact");
        let exact = evaluate(&q, &table);
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(counts[agg as usize], exact.count(agg));
            assert!((sums[agg as usize] - exact.sum(agg)).abs() < 1e-9);
        }
        let mut capped =
            SampleCache::new(q.n_aggregates(), table.row_count() as u64).with_bucket_capacity(4);
        let mut scan = table.scan_shuffled(3);
        while let Some(r) = scan.next_row() {
            capped.observe(q.layout().agg_of_row(r.members), r.value);
        }
        assert!(capped.exact_result().is_none(), "eviction forfeits exactness");
    }

    #[test]
    fn estimate_value_dispatches_on_fct() {
        let e = CacheEstimate { count: 10.0, sum: 55.0, avg: 5.5 };
        assert_eq!(e.value(AggFct::Count), 10.0);
        assert_eq!(e.value(AggFct::Sum), 55.0);
        assert_eq!(e.value(AggFct::Avg), 5.5);
    }
}

#[cfg(test)]
mod eviction_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;

    use crate::query::Query;

    #[test]
    fn bucket_capacity_bounds_memory() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let mut cache =
            SampleCache::new(q.n_aggregates(), table.row_count() as u64).with_bucket_capacity(16);
        let mut scan = table.scan_shuffled(3);
        while let Some(r) = scan.next_row() {
            cache.observe(q.layout().agg_of_row(r.members), r.value);
        }
        for agg in 0..q.n_aggregates() as u32 {
            assert!(cache.size(agg) <= 16, "bucket {agg} capped");
            assert!(cache.seen(agg) as usize >= cache.size(agg));
        }
        // Offered counts still cover the whole table.
        let offered: u64 = (0..q.n_aggregates() as u32).map(|a| cache.seen(a)).sum();
        assert_eq!(offered, 320);
    }

    #[test]
    fn count_estimates_survive_eviction() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Count)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let mut capped =
            SampleCache::new(q.n_aggregates(), table.row_count() as u64).with_bucket_capacity(4);
        let mut scan = table.scan_shuffled(3);
        while let Some(r) = scan.next_row() {
            capped.observe(q.layout().agg_of_row(r.members), r.value);
        }
        let exact = crate::exact::evaluate(&q, &table);
        let mut rng = StdRng::seed_from_u64(1);
        for agg in 0..q.n_aggregates() as u32 {
            let est = capped.estimate(agg, &mut rng).unwrap();
            assert!(
                (est.count - exact.count(agg) as f64).abs() < 1e-9,
                "full-scan count estimate exact despite eviction: {} vs {}",
                est.count,
                exact.count(agg)
            );
        }
    }

    #[test]
    fn reservoir_keeps_value_distribution_unbiased() {
        // Stream a known sequence into a capped bucket many times; the
        // retained sample's mean must track the stream's mean.
        let n_streams = 400;
        let stream: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let true_mean = stream.iter().sum::<f64>() / stream.len() as f64;
        let mut acc = 0.0;
        for seed in 0..n_streams {
            let mut cache = SampleCache::new(1, 200).with_bucket_capacity(8);
            // Individualize eviction decisions via a distinct insertion
            // order per stream.
            let mut order: Vec<usize> = (0..stream.len()).collect();
            use rand::seq::SliceRandom;
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
            for &i in &order {
                cache.observe(Some(0), stream[i]);
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 7);
            let v = cache.resample(0, &mut rng);
            acc += v.iter().sum::<f64>() / v.len() as f64;
        }
        let mean_of_means = acc / n_streams as f64;
        assert!(
            (mean_of_means - true_mean).abs() < true_mean * 0.08,
            "reservoir mean {mean_of_means} vs stream mean {true_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "bucket capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SampleCache::new(1, 10).with_bucket_capacity(0);
    }
}
