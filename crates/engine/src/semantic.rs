//! Cross-query semantic cache (DESIGN.md §9).
//!
//! The holistic engine is fast for a *single* query, but a voice session
//! issues streams of repeated and overlapping queries, and every `vocalize`
//! call cold-starts from row zero. This module caches work across queries
//! at two levels, both keyed by canonical query identities
//! ([`QueryKey`](crate::query::QueryKey) /
//! [`ScopeKey`](crate::query::ScopeKey)):
//!
//! * **Exact results** — once a query's exact per-aggregate counts and sums
//!   are known (the Optimal variant always computes them; a Holistic run
//!   that exhausts its scanner ends up with them in the sample cache), an
//!   identical repeat query skips sampling entirely and plans its speech
//!   against the exact aggregates.
//! * **Sample snapshots** — the in-scope rows a run sampled, together with
//!   the scan seed and per-shard read counts. A *new* query over the same
//!   scope (same measure and filters — group-by only partitions the scope)
//!   re-buckets those rows through its own `ResultLayout` and resumes the
//!   seeded scan where the donor left off, instead of starting from
//!   `nr_read = 0`. Because rows stream in a seeded pseudo-random order,
//!   the donor's prefix is a uniform sample for *any* query over the same
//!   scope, preserving the invariant of paper Algorithm 3.
//!
//! The cache is shard-locked (entries hash to one of a few independently
//! locked shards) with a per-shard byte budget and least-recently-used
//! eviction, and keeps hit/miss/admission/eviction counters for the
//! server's `/stats` endpoint.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use voxolap_data::dimension::MemberId;

use crate::exact::ExactResult;
use crate::poison::RecoveringMutex;
use crate::query::{AggFct, QueryKey, ScopeKey};

/// Number of independently locked cache shards.
const N_SHARDS: usize = 8;

/// Approximate fixed overhead of one cache entry (map slot, key, header).
const ENTRY_OVERHEAD: usize = 128;

/// One sampled in-scope row retained for warm starts: its leaf members
/// (one per dimension) and measure value.
#[derive(Debug, Clone)]
pub struct LoggedRow {
    /// Leaf member per dimension, in schema order.
    pub members: Box<[MemberId]>,
    /// Value of the query's measure.
    pub value: f64,
}

impl LoggedRow {
    fn approx_bytes(&self) -> usize {
        self.members.len() * std::mem::size_of::<MemberId>()
            + std::mem::size_of::<f64>()
            + 2 * std::mem::size_of::<usize>()
    }
}

/// Snapshot of a finished run's uniform sample over one query scope.
#[derive(Debug, Clone)]
pub struct SampleSnapshot {
    /// Scan seed the rows were drawn under; warm starts require an exact
    /// match so the resumed scan continues the same permutation.
    pub seed: u64,
    /// Per-chunk-position progress of the donor's morsel pool (rows
    /// consumed per claimed position of the permuted chunk order,
    /// trailing zeros trimmed). A warm start resumes the pool from these
    /// watermarks — with any worker count, since the consumed set is a
    /// property of the scan order, not of the donor's thread layout.
    pub progress: Vec<u32>,
    /// Total rows read (the sum of `progress`), including out-of-scope
    /// ones — the `nr_read` denominator the seeded cache starts from.
    pub nr_read: u64,
    /// Every in-scope row observed within the prefix.
    pub rows: Vec<LoggedRow>,
    /// Table version the sample was drawn against. A snapshot whose
    /// version trails the live table is *repaired* — only the appended
    /// suffix is scanned (see [`crate::repair`]) — never discarded.
    pub version: u64,
    /// Row count of that table version; repair uses it to locate the
    /// appended suffix and size the proportional suffix read.
    pub table_rows: u64,
}

impl SampleSnapshot {
    fn approx_bytes(&self) -> usize {
        let row = self.rows.first().map_or(0, LoggedRow::approx_bytes);
        // Version + table-row stamps are counted so cache byte budgets
        // stay honest after the versioned-ingest refactor.
        self.rows.len() * row
            + self.progress.len() * 4
            + 2 * std::mem::size_of::<u64>()
            + ENTRY_OVERHEAD
    }
}

/// Exact per-aggregate aggregates of a completed query, sufficient to
/// reconstruct the [`ExactResult`] of any aggregation function over the
/// same layout.
#[derive(Debug, Clone)]
pub struct ExactAggregates {
    /// Per-aggregate scope row counts, in layout order.
    pub counts: Vec<u64>,
    /// Per-aggregate measure sums, in layout order.
    pub sums: Vec<f64>,
}

impl ExactAggregates {
    /// Rebuild the exact result for an aggregation function.
    pub fn to_result(&self, fct: AggFct) -> ExactResult {
        ExactResult::from_parts(fct, self.counts.clone(), self.sums.clone())
    }

    fn approx_bytes(&self) -> usize {
        self.counts.len() * 16 + ENTRY_OVERHEAD
    }
}

/// Point-in-time counter snapshot of a [`SemanticCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-result lookups that found an entry.
    pub exact_hits: u64,
    /// Snapshot lookups that found a compatible warm-start donor.
    pub warm_hits: u64,
    /// Queries that found neither (reported by the engines).
    pub misses: u64,
    /// Entries admitted (exact results + snapshots).
    pub admissions: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Approximate bytes currently held across all shards.
    pub bytes_used: u64,
    /// Shards rebuilt (emptied) after lock poisoning or injected tears.
    pub poison_recoveries: u64,
    /// Exact entries dropped because the table moved past their version.
    pub exact_invalidations: u64,
    /// Sample snapshots repaired by a suffix-only scan after an append.
    pub snapshot_repairs: u64,
    /// Suffix rows scanned by snapshot repairs (the repair cost).
    pub repair_rows_read: u64,
    /// Version-stale exact results served under §12 degradation, always
    /// marked `stale` in the answer.
    pub stale_serves: u64,
}

/// Outcome of a version-checked exact lookup.
#[derive(Debug, Clone)]
pub enum ExactLookup {
    /// Entry computed against the queried table version — safe to serve.
    Fresh(Arc<ExactAggregates>),
    /// Entry from an older version. It is left in the cache: the caller
    /// either serves it marked `stale` (§12 degradation ladder) or calls
    /// [`SemanticCache::invalidate_exact`] and replans fresh.
    Stale(Arc<ExactAggregates>),
    /// No entry for this key.
    Miss,
}

struct ExactEntry {
    data: Arc<ExactAggregates>,
    /// Table version the aggregates were computed against.
    version: u64,
    bytes: usize,
    last_used: u64,
}

struct SampleEntry {
    snap: Arc<SampleSnapshot>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    exact: HashMap<QueryKey, ExactEntry>,
    samples: HashMap<ScopeKey, SampleEntry>,
    bytes: usize,
}

impl Shard {
    /// Evict least-recently-used entries (across both maps) until the
    /// shard fits its budget. Returns the number of evictions.
    fn enforce_budget(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let oldest_exact = self.exact.iter().min_by_key(|(_, e)| e.last_used);
            let oldest_sample = self.samples.iter().min_by_key(|(_, e)| e.last_used);
            match (oldest_exact, oldest_sample) {
                (Some((k, e)), Some((s, se))) => {
                    if e.last_used <= se.last_used {
                        let k = k.clone();
                        self.bytes -= self.exact.remove(&k).map_or(0, |e| e.bytes);
                    } else {
                        let s = s.clone();
                        self.bytes -= self.samples.remove(&s).map_or(0, |e| e.bytes);
                    }
                }
                (Some((k, _)), None) => {
                    let k = k.clone();
                    self.bytes -= self.exact.remove(&k).map_or(0, |e| e.bytes);
                }
                (None, Some((s, _))) => {
                    let s = s.clone();
                    self.bytes -= self.samples.remove(&s).map_or(0, |e| e.bytes);
                }
                (None, None) => break,
            }
            evicted += 1;
        }
        evicted
    }
}

/// Size-bounded, shard-locked cross-query cache (see module docs).
pub struct SemanticCache {
    shards: Vec<RecoveringMutex<Shard>>,
    /// Byte budget per shard (total budget / [`N_SHARDS`]).
    shard_budget: usize,
    capacity_bytes: usize,
    /// Logical clock driving LRU ordering.
    tick: AtomicU64,
    exact_hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
    admissions: AtomicU64,
    evictions: AtomicU64,
    poison_recoveries: AtomicU64,
    exact_invalidations: AtomicU64,
    snapshot_repairs: AtomicU64,
    repair_rows_read: AtomicU64,
    stale_serves: AtomicU64,
}

impl std::fmt::Debug for SemanticCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemanticCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SemanticCache {
    /// Create a cache with a total byte budget.
    pub fn new(capacity_bytes: usize) -> Self {
        SemanticCache {
            shards: (0..N_SHARDS).map(|_| RecoveringMutex::new(Shard::default())).collect(),
            shard_budget: (capacity_bytes / N_SHARDS).max(ENTRY_OVERHEAD),
            capacity_bytes,
            tick: AtomicU64::new(0),
            exact_hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
            exact_invalidations: AtomicU64::new(0),
            snapshot_repairs: AtomicU64::new(0),
            repair_rows_read: AtomicU64::new(0),
            stale_serves: AtomicU64::new(0),
        }
    }

    /// Create a cache budgeted in mebibytes (the CLI's `--cache-mb`).
    pub fn with_capacity_mb(mb: usize) -> Self {
        SemanticCache::new(mb * 1024 * 1024)
    }

    /// Total byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Largest number of rows a snapshot may hold and still be admissible
    /// (one shard's budget); engines cap their row logs at this so an
    /// oversized sample is dropped at the source instead of thrashing the
    /// cache.
    pub fn snapshot_row_budget(&self, members_per_row: usize) -> usize {
        let row = members_per_row * std::mem::size_of::<MemberId>()
            + std::mem::size_of::<f64>()
            + 2 * std::mem::size_of::<usize>();
        self.shard_budget / row.max(1)
    }

    fn shard_of<K: Hash>(&self, key: &K) -> &RecoveringMutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % N_SHARDS]
    }

    /// Lock a shard, rebuilding it empty first if its previous holder
    /// died mid-update. A cache may always forget, so dropping the torn
    /// shard's entries restores consistency; the rebuild is surfaced via
    /// [`CacheStats::poison_recoveries`].
    fn lock_shard<'a>(
        &'a self,
        shard: &'a RecoveringMutex<Shard>,
    ) -> std::sync::MutexGuard<'a, Shard> {
        shard.lock_recovering(|s| {
            *s = Shard::default();
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
        })
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up the exact result of a canonically identical earlier query,
    /// checked against the caller's pinned table version. A version-stale
    /// entry is returned as [`ExactLookup::Stale`] and **left in place** —
    /// the §12 ladder may serve it marked `stale` when the fresh path is
    /// unavailable; the normal path calls
    /// [`SemanticCache::invalidate_exact`] instead.
    pub fn lookup_exact(&self, key: &QueryKey, version: u64) -> ExactLookup {
        let mut shard = self.lock_shard(self.shard_of(key));
        let tick = self.next_tick();
        let Some(entry) = shard.exact.get_mut(key) else {
            return ExactLookup::Miss;
        };
        entry.last_used = tick;
        let data = entry.data.clone();
        let fresh = entry.version == version;
        drop(shard);
        if fresh {
            self.exact_hits.fetch_add(1, Ordering::Relaxed);
            ExactLookup::Fresh(data)
        } else {
            ExactLookup::Stale(data)
        }
    }

    /// Drop a version-stale exact entry (the table moved past it and the
    /// caller is replanning fresh).
    pub fn invalidate_exact(&self, key: &QueryKey) {
        let mut shard = self.lock_shard(self.shard_of(key));
        if let Some(old) = shard.exact.remove(key) {
            shard.bytes -= old.bytes;
            drop(shard);
            self.exact_invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a snapshot repair and the suffix rows it scanned.
    pub fn note_repair(&self, rows_read: u64) {
        self.snapshot_repairs.fetch_add(1, Ordering::Relaxed);
        self.repair_rows_read.fetch_add(rows_read, Ordering::Relaxed);
    }

    /// Record that a version-stale exact result was served (marked) under
    /// degradation.
    pub fn note_stale_serve(&self) {
        self.stale_serves.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a warm-start donor for a query over `scope`: a snapshot is
    /// compatible only if it was drawn under the same scan `seed` (so the
    /// resumed scan continues the same two-level permutation). The donor's
    /// worker count is irrelevant — morsel-pool progress describes the
    /// consumed set itself, so any thread layout can resume it.
    pub fn lookup_snapshot(&self, scope: &ScopeKey, seed: u64) -> Option<Arc<SampleSnapshot>> {
        let mut shard = self.lock_shard(self.shard_of(scope));
        let tick = self.next_tick();
        let entry = shard.samples.get_mut(scope)?;
        if entry.snap.seed != seed {
            return None;
        }
        entry.last_used = tick;
        let snap = entry.snap.clone();
        drop(shard);
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
        Some(snap)
    }

    /// Record that a query found neither an exact result nor a warm-start
    /// donor (called by the engines so hit rates are well-defined).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Admit the exact per-aggregate counts and sums of a completed query,
    /// stamped with the table version they were computed against.
    pub fn admit_exact(&self, key: &QueryKey, version: u64, counts: Vec<u64>, sums: Vec<f64>) {
        let data = Arc::new(ExactAggregates { counts, sums });
        // The version stamp is counted toward the budget like any other
        // entry metadata.
        let bytes = data.approx_bytes() + std::mem::size_of::<u64>();
        let tick = self.next_tick();
        let mut shard = self.lock_shard(self.shard_of(key));
        if let Some(old) =
            shard.exact.insert(key.clone(), ExactEntry { data, version, bytes, last_used: tick })
        {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        let evicted = shard.enforce_budget(self.shard_budget);
        drop(shard);
        self.admissions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Admit a sample snapshot for a query scope. An existing snapshot for
    /// the scope is replaced only by one covering at least as many rows
    /// (deeper prefixes make strictly better donors) or drawn against a
    /// newer table version (repaired snapshots supersede their donor even
    /// when the proportional suffix read rounded to zero rows).
    pub fn admit_snapshot(&self, scope: &ScopeKey, snap: SampleSnapshot) {
        let bytes = snap.approx_bytes();
        if bytes > self.shard_budget {
            return;
        }
        let tick = self.next_tick();
        let mut shard = self.lock_shard(self.shard_of(scope));
        if let Some(existing) = shard.samples.get(scope) {
            if existing.snap.seed == snap.seed
                && existing.snap.version >= snap.version
                && existing.snap.nr_read >= snap.nr_read
            {
                return;
            }
        }
        let entry = SampleEntry { snap: Arc::new(snap), bytes, last_used: tick };
        if let Some(old) = shard.samples.insert(scope.clone(), entry) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        let evicted = shard.enforce_budget(self.shard_budget);
        drop(shard);
        self.admissions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        let bytes_used: usize = self.shards.iter().map(|s| self.lock_shard(s).bytes).sum();
        CacheStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_used: bytes_used as u64,
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
            exact_invalidations: self.exact_invalidations.load(Ordering::Relaxed),
            snapshot_repairs: self.snapshot_repairs.load(Ordering::Relaxed),
            repair_rows_read: self.repair_rows_read.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::schema::MeasureId;
    use voxolap_data::DimId;

    fn key(n: u8) -> QueryKey {
        QueryKey::canonical(
            AggFct::Avg,
            MeasureId(0),
            &[(DimId(n), LevelId(1))],
            &[(DimId(0), MemberId(n as u32 + 1))],
        )
    }

    fn exact_payload(len: usize) -> (Vec<u64>, Vec<f64>) {
        ((0..len as u64).collect(), (0..len).map(|i| i as f64).collect())
    }

    /// Collapse a version-checked lookup to its fresh payload (tests that
    /// only care about hit-or-miss at one version).
    fn fresh(l: ExactLookup) -> Option<Arc<ExactAggregates>> {
        match l {
            ExactLookup::Fresh(d) => Some(d),
            _ => None,
        }
    }

    #[test]
    fn exact_roundtrip_and_counters() {
        let cache = SemanticCache::with_capacity_mb(1);
        let k = key(0);
        assert!(fresh(cache.lookup_exact(&k, 0)).is_none());
        let (counts, sums) = exact_payload(4);
        cache.admit_exact(&k, 0, counts.clone(), sums.clone());
        let hit = fresh(cache.lookup_exact(&k, 0)).expect("admitted entry is found");
        assert_eq!(hit.counts, counts);
        assert_eq!(hit.sums, sums);
        let r = hit.to_result(AggFct::Sum);
        assert_eq!(r.sum(2), 2.0);
        cache.record_miss();
        let stats = cache.stats();
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.admissions, 1);
        assert!(stats.bytes_used > 0);
    }

    #[test]
    fn version_stale_exact_is_reported_not_served_fresh() {
        let cache = SemanticCache::with_capacity_mb(1);
        let k = key(0);
        let (counts, sums) = exact_payload(4);
        cache.admit_exact(&k, 3, counts, sums);
        assert!(fresh(cache.lookup_exact(&k, 3)).is_some(), "matching version hits");
        // The table moved to version 4: the entry surfaces as Stale and
        // stays in place for a possible marked stale-serve.
        assert!(matches!(cache.lookup_exact(&k, 4), ExactLookup::Stale(_)));
        assert!(matches!(cache.lookup_exact(&k, 4), ExactLookup::Stale(_)), "left in place");
        // The fresh path invalidates instead.
        cache.invalidate_exact(&k);
        assert!(matches!(cache.lookup_exact(&k, 4), ExactLookup::Miss));
        let stats = cache.stats();
        assert_eq!(stats.exact_invalidations, 1);
        assert_eq!(stats.exact_hits, 1, "stale lookups are not hits");
        // Idempotent on a missing key.
        cache.invalidate_exact(&k);
        assert_eq!(cache.stats().exact_invalidations, 1);
    }

    #[test]
    fn repair_and_stale_serve_counters_accumulate() {
        let cache = SemanticCache::with_capacity_mb(1);
        cache.note_repair(120);
        cache.note_repair(30);
        cache.note_stale_serve();
        let stats = cache.stats();
        assert_eq!(stats.snapshot_repairs, 2);
        assert_eq!(stats.repair_rows_read, 150);
        assert_eq!(stats.stale_serves, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits two exact entries per shard; with a deterministic
        // single-key-shard workload the third admission must evict the
        // least recently *used* entry, not the oldest inserted.
        let (counts, sums) = exact_payload(64);
        let probe = ExactAggregates { counts: counts.clone(), sums: sums.clone() };
        // Admitted entries carry an extra version stamp.
        let entry_bytes = probe.approx_bytes() + std::mem::size_of::<u64>();
        let cache = SemanticCache::new(entry_bytes * 2 * N_SHARDS + N_SHARDS);
        // Find three keys hashing to the same shard so the budget math is
        // exercised within one lock.
        let mut same_shard = Vec::new();
        let target = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            key(0).hash(&mut h);
            (h.finish() as usize) % N_SHARDS
        };
        for n in 0..=u8::MAX {
            let k = key(n);
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            if (h.finish() as usize) % N_SHARDS == target {
                same_shard.push(k);
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        let [a, b, c] = <[QueryKey; 3]>::try_from(same_shard).expect("3 colliding keys");
        cache.admit_exact(&a, 0, counts.clone(), sums.clone());
        cache.admit_exact(&b, 0, counts.clone(), sums.clone());
        // Touch `a` so `b` becomes the least recently used.
        assert!(fresh(cache.lookup_exact(&a, 0)).is_some());
        cache.admit_exact(&c, 0, counts, sums);
        assert!(fresh(cache.lookup_exact(&a, 0)).is_some(), "recently used entry survives");
        assert!(fresh(cache.lookup_exact(&b, 0)).is_none(), "LRU entry evicted");
        assert!(fresh(cache.lookup_exact(&c, 0)).is_some(), "new entry admitted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn budget_enforcement_still_evicts_with_version_metadata() {
        // The version/table-row stamps added for live ingest are counted
        // toward entry sizes; a cache sized for roughly two snapshots must
        // keep evicting (and stay within budget) as more are admitted.
        let probe = SampleSnapshot {
            seed: 1,
            progress: vec![64; 16],
            nr_read: 1_024,
            rows: (0..64)
                .map(|i| LoggedRow { members: Box::new([MemberId(i)]), value: i as f64 })
                .collect(),
            version: 9,
            table_rows: 10_000,
        };
        let entry_bytes = probe.approx_bytes();
        let cache = SemanticCache::new(entry_bytes * 2 * N_SHARDS);
        for n in 0..32u8 {
            let mut snap = probe.clone();
            snap.seed = n as u64;
            cache.admit_snapshot(&key(n).scope(), snap);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "budget enforcement must evict");
        assert!(
            stats.bytes_used <= cache.capacity_bytes() as u64,
            "{} bytes exceed the {} budget",
            stats.bytes_used,
            cache.capacity_bytes()
        );
    }

    #[test]
    fn snapshot_compatibility_requires_seed() {
        let cache = SemanticCache::with_capacity_mb(1);
        let scope = key(0).scope();
        let snap = SampleSnapshot {
            seed: 42,
            progress: vec![100],
            nr_read: 100,
            rows: vec![LoggedRow { members: Box::new([MemberId(1)]), value: 1.0 }],
            version: 0,
            table_rows: 100,
        };
        cache.admit_snapshot(&scope, snap);
        assert!(cache.lookup_snapshot(&scope, 42).is_some());
        assert!(cache.lookup_snapshot(&scope, 43).is_none(), "seed mismatch");
        assert!(cache.lookup_snapshot(&key(1).scope(), 42).is_none(), "scope mismatch");
        assert_eq!(cache.stats().warm_hits, 1);
    }

    #[test]
    fn torn_shard_is_rebuilt_empty_and_counted() {
        let cache = SemanticCache::with_capacity_mb(1);
        let k = key(0);
        let (counts, sums) = exact_payload(4);
        cache.admit_exact(&k, 0, counts, sums);
        assert!(fresh(cache.lookup_exact(&k, 0)).is_some());
        // Simulate a holder dying mid-update on that entry's shard: the
        // next locker rebuilds the shard empty instead of panicking.
        cache.shard_of(&k).mark_torn();
        assert!(fresh(cache.lookup_exact(&k, 0)).is_none(), "torn shard forgets its entries");
        let stats = cache.stats();
        assert_eq!(stats.poison_recoveries, 1);
        assert_eq!(stats.bytes_used, 0, "rebuilt shard holds no bytes");
        // The cache keeps working after recovery.
        let (counts, sums) = exact_payload(4);
        cache.admit_exact(&k, 0, counts, sums);
        assert!(fresh(cache.lookup_exact(&k, 0)).is_some());
    }

    #[test]
    fn deeper_snapshot_replaces_shallower_one() {
        let cache = SemanticCache::with_capacity_mb(1);
        let scope = key(0).scope();
        let make = |nr_read: u64| SampleSnapshot {
            seed: 42,
            progress: vec![nr_read as u32],
            nr_read,
            rows: Vec::new(),
            version: 0,
            table_rows: 1_000,
        };
        cache.admit_snapshot(&scope, make(200));
        cache.admit_snapshot(&scope, make(100));
        assert_eq!(cache.lookup_snapshot(&scope, 42).unwrap().nr_read, 200);
        cache.admit_snapshot(&scope, make(300));
        assert_eq!(cache.lookup_snapshot(&scope, 42).unwrap().nr_read, 300);
    }

    #[test]
    fn newer_version_snapshot_replaces_equal_read_donor() {
        // A repaired snapshot whose proportional suffix read rounded to
        // zero has the same nr_read as its donor but a newer version — it
        // must still replace the donor, or every warm start would re-repair.
        let cache = SemanticCache::with_capacity_mb(1);
        let scope = key(0).scope();
        let make = |version: u64, table_rows: u64| SampleSnapshot {
            seed: 42,
            progress: vec![50],
            nr_read: 50,
            rows: Vec::new(),
            version,
            table_rows,
        };
        cache.admit_snapshot(&scope, make(0, 1_000));
        cache.admit_snapshot(&scope, make(1, 1_001));
        let got = cache.lookup_snapshot(&scope, 42).unwrap();
        assert_eq!((got.version, got.table_rows), (1, 1_001));
        // But an older version never displaces a newer one.
        cache.admit_snapshot(&scope, make(0, 1_000));
        assert_eq!(cache.lookup_snapshot(&scope, 42).unwrap().version, 1);
    }
}
