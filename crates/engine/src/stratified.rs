//! Stratified row streaming.
//!
//! The paper's cache fills from rows in random order, which starves rare
//! sub-populations: an aggregate covering 0.1 % of rows needs ~1 000
//! streamed rows per cache entry. The paper notes the approach "could be
//! extended using prior work on sampling in the context of OLAP (e.g.,
//! specialized indexing structures) to retrieve estimates for particularly
//! small data subsets" (§4.3). This module is that extension: a one-pass
//! index of row ids per result aggregate (the in-memory analogue of
//! materialized sample views), streamed round-robin so every aggregate
//! receives cache entries at the same rate regardless of its share of the
//! data.
//!
//! Trade-off: per-aggregate streaming order is uniform *within* an
//! aggregate, but global order is no longer uniform over rows — count/sum
//! estimators based on `nr_read` would be biased, so stratified streaming
//! is intended for AVG queries (where only per-bucket means matter).
//! [`StratifiedScanner::next_row`] documents this contract.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use voxolap_data::dimension::MemberId;
use voxolap_data::table::Row;
use voxolap_data::{DimId, Table};

use crate::query::{Query, ResultLayout};

/// Per-aggregate row index over one table for one query
/// (the "materialized sample view").
#[derive(Debug, Clone)]
pub struct AggregateIndex {
    /// Row ids per aggregate, shuffled.
    rows_per_agg: Vec<Vec<u32>>,
}

impl AggregateIndex {
    /// Build the index with a single scan; row lists are shuffled with
    /// `seed` so streaming prefixes are uniform samples of each aggregate.
    pub fn build(table: &Table, query: &Query, seed: u64) -> Self {
        let layout: &ResultLayout = query.layout();
        let mut rows_per_agg = vec![Vec::new(); layout.n_aggregates()];
        let n_dims = table.schema().dimensions().len();
        let mut members = vec![MemberId::ROOT; n_dims];
        for row in 0..table.row_count() {
            for (d, slot) in members.iter_mut().enumerate() {
                *slot = table.member_at(DimId(d as u8), row);
            }
            if let Some(agg) = layout.agg_of_row(&members) {
                rows_per_agg[agg as usize].push(row as u32);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for rows in &mut rows_per_agg {
            rows.shuffle(&mut rng);
        }
        AggregateIndex { rows_per_agg }
    }

    /// Number of rows indexed for one aggregate.
    pub fn rows_in(&self, agg: u32) -> usize {
        self.rows_per_agg[agg as usize].len()
    }

    /// Total in-scope rows.
    pub fn total_rows(&self) -> usize {
        self.rows_per_agg.iter().map(Vec::len).sum()
    }

    /// Stream the indexed rows round-robin across aggregates.
    pub fn scan<'a>(&'a self, table: &'a Table) -> StratifiedScanner<'a> {
        StratifiedScanner {
            index: self,
            table,
            agg_cursor: 0,
            depth: 0,
            emitted: 0,
            buf: vec![MemberId::ROOT; table.schema().dimensions().len()],
        }
    }
}

/// Round-robin scanner over an [`AggregateIndex`].
///
/// Delivery order: the first row of every non-empty aggregate, then the
/// second of each, and so on — so after `k × n_aggregates` rows every
/// aggregate with ≥ k rows has exactly `k` cache entries. Yields the
/// **primary** measure; per-row global uniformity is deliberately given up
/// (see module docs), so use only where per-aggregate means are what
/// matters (AVG).
#[derive(Debug)]
pub struct StratifiedScanner<'a> {
    index: &'a AggregateIndex,
    table: &'a Table,
    agg_cursor: usize,
    depth: usize,
    emitted: usize,
    buf: Vec<MemberId>,
}

impl<'a> StratifiedScanner<'a> {
    /// Rows delivered so far.
    pub fn rows_read(&self) -> usize {
        self.emitted
    }

    /// Deliver the next row together with its aggregate index, or `None`
    /// when every indexed row has been streamed.
    pub fn next_row(&mut self) -> Option<(u32, Row<'_>)> {
        let n_aggs = self.index.rows_per_agg.len();
        if n_aggs == 0 || self.emitted >= self.index.total_rows() {
            return None;
        }
        loop {
            if self.agg_cursor == n_aggs {
                self.agg_cursor = 0;
                self.depth += 1;
            }
            let agg = self.agg_cursor;
            self.agg_cursor += 1;
            if let Some(&row) = self.index.rows_per_agg[agg].get(self.depth) {
                let row = row as usize;
                for (d, slot) in self.buf.iter_mut().enumerate() {
                    *slot = self.table.member_at(DimId(d as u8), row);
                }
                self.emitted += 1;
                return Some((
                    agg as u32,
                    Row { members: &self.buf, value: self.table.value_at(row) },
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SampleCache;
    use crate::query::AggFct;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::FlightsConfig;

    fn setup() -> (voxolap_data::Table, Query) {
        let table = FlightsConfig { rows: 30_000, seed: 42 }.generate();
        // Region x season: the US-territories cells hold ~0.75% of rows.
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn index_covers_every_in_scope_row_exactly_once() {
        let (table, q) = setup();
        let index = AggregateIndex::build(&table, &q, 7);
        assert_eq!(index.total_rows(), table.row_count(), "full-scope query");
        let mut scan = index.scan(&table);
        let mut seen = 0usize;
        while scan.next_row().is_some() {
            seen += 1;
        }
        assert_eq!(seen, table.row_count());
    }

    #[test]
    fn round_robin_equalizes_early_coverage() {
        let (table, q) = setup();
        let index = AggregateIndex::build(&table, &q, 7);
        let n_aggs = q.n_aggregates();
        let mut scan = index.scan(&table);
        let mut counts = vec![0usize; n_aggs];
        // One full round: every aggregate gets exactly one row.
        for _ in 0..n_aggs {
            let (agg, _) = scan.next_row().unwrap();
            counts[agg as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
        // Contrast with the shuffled scan: after n_aggs rows the rarest
        // aggregate (US territories in Fall, ~0.2% of rows) is almost
        // certainly still empty there.
    }

    #[test]
    fn rare_aggregates_get_cache_entries_immediately() {
        let (table, q) = setup();
        let index = AggregateIndex::build(&table, &q, 7);
        // Feed the first 3 rounds into a cache.
        let mut cache = SampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let mut scan = index.scan(&table);
        for _ in 0..(3 * q.n_aggregates()) {
            let Some((_, row)) = scan.next_row() else { break };
            cache.observe(q.layout().agg_of_row(row.members), row.value);
        }
        for agg in 0..q.n_aggregates() as u32 {
            let expect = index.rows_in(agg).min(3);
            assert_eq!(cache.size(agg), expect, "aggregate {agg}");
        }
    }

    #[test]
    fn streamed_rows_carry_correct_aggregates() {
        let (table, q) = setup();
        let index = AggregateIndex::build(&table, &q, 9);
        let mut scan = index.scan(&table);
        for _ in 0..500 {
            let Some((agg, row)) = scan.next_row() else { break };
            assert_eq!(q.layout().agg_of_row(row.members), Some(agg));
        }
    }

    #[test]
    fn filtered_queries_index_only_their_scope() {
        let table = FlightsConfig { rows: 10_000, seed: 42 }.generate();
        let schema = table.schema();
        let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").unwrap();
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(1), winter)
            .group_by(DimId(0), LevelId(1))
            .build(schema)
            .unwrap();
        let index = AggregateIndex::build(&table, &q, 3);
        assert!(index.total_rows() < table.row_count());
        assert!(index.total_rows() > table.row_count() / 8, "winter is ~1/4 of rows");
    }
}
