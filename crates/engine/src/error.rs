//! Error type for the query engine.

use std::fmt;

use voxolap_data::DataError;

/// Errors raised while building or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query referenced the same dimension twice in its GROUP BY.
    DuplicateGroupDim {
        /// Index of the duplicated dimension.
        dim: usize,
    },
    /// A grouping level was the root level or out of range.
    BadGroupLevel {
        /// Index of the dimension.
        dim: usize,
        /// The offending level index.
        level: usize,
    },
    /// A filter member does not belong to the named dimension.
    BadFilterMember {
        /// Index of the dimension.
        dim: usize,
        /// The offending member index.
        member: usize,
    },
    /// The query referenced a measure column the schema does not have.
    BadMeasure {
        /// The offending measure index.
        measure: usize,
    },
    /// The query produced zero aggregates (e.g. contradictory filters).
    EmptyResult,
    /// Underlying data-layer error.
    Data(DataError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DuplicateGroupDim { dim } => {
                write!(f, "dimension {dim} appears twice in GROUP BY")
            }
            EngineError::BadGroupLevel { dim, level } => {
                write!(f, "invalid grouping level {level} for dimension {dim}")
            }
            EngineError::BadFilterMember { dim, member } => {
                write!(f, "member {member} does not belong to dimension {dim}")
            }
            EngineError::BadMeasure { measure } => {
                write!(f, "schema has no measure column {measure}")
            }
            EngineError::EmptyResult => write!(f, "query has no result aggregates"),
            EngineError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::DuplicateGroupDim { dim: 1 }.to_string().contains("twice"));
        assert!(EngineError::EmptyResult.to_string().contains("no result"));
        let wrapped: EngineError = DataError::InvalidId { kind: "member", id: 3 }.into();
        assert!(wrapped.to_string().contains("data error"));
        use std::error::Error as _;
        assert!(wrapped.source().is_some());
    }
}
