//! Poison-recovering mutexes for shared cache state.
//!
//! The sharded sample cache and the semantic cache are shared across
//! planner threads; with a plain `lock().unwrap()` a single panicking
//! holder would permanently poison its shard and take every later query
//! down with it. [`RecoveringMutex`] instead treats a poisoned (or
//! injected-torn) lock as *damaged data, not a damaged program*: the next
//! locker hands the torn value to a reset closure that rebuilds a
//! consistent (if emptier) state, clears the poison flag, and proceeds.
//! Degradation is counted by the caller inside its reset closure, so the
//! recovery shows up in `/stats` instead of as a crash.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A `std::sync::Mutex` whose lock path rebuilds torn state instead of
/// panicking on poison.
///
/// Two tear signals feed the same recovery path:
///
/// * **real poisoning** — a thread panicked while holding the guard
///   (std's `PoisonError`);
/// * **injected tearing** — [`mark_torn`](RecoveringMutex::mark_torn),
///   used by the fault-injection harness to model a holder dying
///   mid-update without actually unwinding a panic through the engine.
#[derive(Debug, Default)]
pub struct RecoveringMutex<T> {
    inner: Mutex<T>,
    torn: AtomicBool,
}

impl<T> RecoveringMutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RecoveringMutex { inner: Mutex::new(value), torn: AtomicBool::new(false) }
    }

    /// Lock, recovering first if the previous holder died mid-update:
    /// `reset` receives the torn value and must leave it consistent
    /// (callers also count the recovery there). The untorn fast path is
    /// one extra relaxed load over a plain lock.
    pub fn lock_recovering(&self, reset: impl FnOnce(&mut T)) -> MutexGuard<'_, T> {
        let (mut guard, recovered) = match self.inner.lock() {
            Ok(guard) => (guard, false),
            Err(poisoned) => {
                self.inner.clear_poison();
                (poisoned.into_inner(), true)
            }
        };
        // The torn flag is checked under the lock, so exactly one locker
        // performs the rebuild.
        if recovered || self.torn.swap(false, Ordering::Relaxed) {
            reset(&mut guard);
        }
        guard
    }

    /// Simulate a holder dying mid-update (fault injection): the next
    /// [`lock_recovering`](RecoveringMutex::lock_recovering) rebuilds.
    pub fn mark_torn(&self) {
        self.torn.store(true, Ordering::Relaxed);
    }

    /// Consume the mutex, recovering a torn value the same way locking
    /// would.
    pub fn into_inner(self, reset: impl FnOnce(&mut T)) -> T {
        let (mut value, recovered) = match self.inner.into_inner() {
            Ok(v) => (v, false),
            Err(poisoned) => (poisoned.into_inner(), true),
        };
        if recovered || self.torn.load(Ordering::Relaxed) {
            reset(&mut value);
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn plain_locking_never_resets() {
        let m = RecoveringMutex::new(vec![1, 2, 3]);
        let resets = AtomicU64::new(0);
        {
            let mut g = m.lock_recovering(|_| {
                resets.fetch_add(1, Ordering::Relaxed);
            });
            g.push(4);
        }
        let g = m.lock_recovering(|_| {
            resets.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(*g, vec![1, 2, 3, 4]);
        assert_eq!(resets.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn real_panic_poison_is_recovered_once() {
        let m = Arc::new(RecoveringMutex::new(vec![1, 2, 3]));
        let m2 = m.clone();
        // A thread dies while holding the guard: std poisons the mutex.
        let joined = std::thread::spawn(move || {
            let _g = m2.inner.lock().unwrap();
            panic!("holder dies mid-update");
        })
        .join();
        assert!(joined.is_err(), "the holder really panicked");
        let recoveries = AtomicU64::new(0);
        let reset = |v: &mut Vec<i32>| {
            v.clear();
            recoveries.fetch_add(1, Ordering::Relaxed);
        };
        {
            let g = m.lock_recovering(reset);
            assert!(g.is_empty(), "torn state rebuilt");
        }
        assert_eq!(recoveries.load(Ordering::Relaxed), 1);
        // Poison was cleared: later locks take the fast path.
        let g = m.lock_recovering(|v: &mut Vec<i32>| {
            v.push(99);
            recoveries.fetch_add(1, Ordering::Relaxed);
        });
        assert!(g.is_empty());
        assert_eq!(recoveries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mark_torn_triggers_exactly_one_rebuild() {
        let m = RecoveringMutex::new(7u32);
        m.mark_torn();
        let resets = AtomicU64::new(0);
        let reset = |v: &mut u32| {
            *v = 0;
            resets.fetch_add(1, Ordering::Relaxed);
        };
        assert_eq!(*m.lock_recovering(reset), 0);
        assert_eq!(*m.lock_recovering(reset), 0);
        assert_eq!(resets.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_lockers_survive_a_torn_mark() {
        let m = Arc::new(RecoveringMutex::new(0u64));
        let recoveries = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                let recoveries = recoveries.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        if i % 97 == 0 {
                            m.mark_torn();
                        }
                        let mut g = m.lock_recovering(|v| {
                            *v = 0;
                            recoveries.fetch_add(1, Ordering::Relaxed);
                        });
                        *g += 1;
                    }
                });
            }
        });
        assert!(recoveries.load(Ordering::Relaxed) >= 1, "tears were recovered");
        let final_value = *m.lock_recovering(|_| {});
        assert!(final_value <= 4000);
    }
}
