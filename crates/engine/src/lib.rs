//! # voxolap-engine
//!
//! OLAP query model and evaluation substrate for VoxOLAP.
//!
//! A [`Query`] is characterized by an aggregation function,
//! an (implicit) aggregation column — the table's measure — and a set of
//! aggregates arising as the cross product of grouped dimension members
//! under optional filter restrictions (paper §2).
//!
//! Two evaluation paths are provided:
//!
//! * [`exact`] — a full scan with group-by, used by the *Optimal* planner
//!   variant and by exact speech-quality computation;
//! * [`cache`] — the continuously-filled sample cache of paper Algorithm 3,
//!   supplying unbiased count/sum/average estimates from row samples, used
//!   by the *Holistic* and *Unmerged* planners.
//!
//! ```
//! use voxolap_data::salary::SalaryConfig;
//! use voxolap_engine::query::{AggFct, Query};
//! use voxolap_engine::exact::evaluate;
//! use voxolap_data::{DimId, dimension::LevelId};
//!
//! let table = SalaryConfig::paper_scale().generate();
//! // AVG(midCareer) GROUP BY region, rough start salary
//! let query = Query::builder(AggFct::Avg)
//!     .group_by(DimId(0), LevelId(1))
//!     .group_by(DimId(1), LevelId(1))
//!     .build(table.schema())
//!     .unwrap();
//! let result = evaluate(&query, &table);
//! assert_eq!(result.values().len(), 4 * 2); // 4 regions x 2 rough bins
//! ```

pub mod cache;
pub mod error;
pub mod exact;
pub mod poison;
pub mod query;
pub mod repair;
pub mod semantic;
pub mod sharded;
pub mod stratified;

pub use cache::{CacheEstimate, ResampleScratch, SampleCache};
pub use error::EngineError;
pub use exact::{evaluate, ExactResult};
pub use query::{
    decode_agg, AggFct, AggIdx, Query, QueryBuilder, QueryKey, ResultLayout, ScopeKey,
    AGG_OUT_OF_SCOPE,
};
pub use repair::{repair_snapshot, RepairOutcome};
pub use semantic::{
    CacheStats, ExactAggregates, ExactLookup, LoggedRow, SampleSnapshot, SemanticCache,
};
pub use sharded::{IngestBatch, ShardedSampleCache};
pub use stratified::{AggregateIndex, StratifiedScanner};
