//! OLAP query model (paper §2).
//!
//! A query is characterized by an aggregation function ([`AggFct`]), an
//! aggregation column (the table's measure), and a set of aggregates. Each
//! aggregate corresponds to one cell of the cross product over grouped
//! dimension members; its scope is the conjunction of one member restriction
//! per dimension. Filters restrict the query scope before grouping (the
//! `WHERE airportState='New York'` of the paper's introductory example).
//!
//! [`ResultLayout`] materializes that cross product: it assigns each
//! aggregate a dense index ([`AggIdx`]) in mixed-radix order and precomputes
//! leaf-member → coordinate lookup tables so the per-row scope test used by
//! the sample cache costs `O(#dimensions)` array lookups.

use voxolap_data::dimension::{LevelId, MemberId};
use voxolap_data::schema::{DimId, MeasureId, Schema};
use voxolap_data::table::DimSlice;

use crate::error::EngineError;

/// Dense index of an aggregate in a query result.
pub type AggIdx = u32;

/// Sentinel aggregate code marking a row outside the query scope, as
/// emitted by the columnar kernel [`ResultLayout::agg_of_block`]. Safe as
/// a sentinel: `QueryBuilder::build` rejects layouts whose aggregate count
/// exceeds `u32::MAX`, so no real aggregate index ever equals it.
pub const AGG_OUT_OF_SCOPE: u32 = u32::MAX;

/// Sentinel marking a leaf member outside the query scope.
const OUT_OF_SCOPE: u32 = u32::MAX;

/// Lift a raw aggregate code from [`ResultLayout::agg_of_block`] into the
/// `Option` form the caches consume.
#[inline]
pub fn decode_agg(code: u32) -> Option<AggIdx> {
    if code == AGG_OUT_OF_SCOPE {
        None
    } else {
        Some(code)
    }
}

/// Aggregation function (paper supports AVG, SUM, COUNT; MIN/MAX are
/// "notoriously difficult to approximate via sampling" and excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFct {
    /// Arithmetic mean of the measure.
    Avg,
    /// Sum of the measure.
    Sum,
    /// Row count.
    Count,
}

impl AggFct {
    /// Spoken qualifier used in baselines (e.g. "the **average** …").
    pub fn spoken(self) -> &'static str {
        match self {
            AggFct::Avg => "average",
            AggFct::Sum => "total",
            AggFct::Count => "number of",
        }
    }
}

/// Per-dimension slice of a [`ResultLayout`].
#[derive(Debug, Clone)]
struct DimLayout {
    /// Scope member for this dimension: the filter member if one is set,
    /// the root otherwise.
    scope: MemberId,
    /// Grouping level if this dimension appears in the GROUP BY.
    group_level: Option<LevelId>,
    /// Coordinate members: the grouping-level members under `scope` for
    /// grouped dimensions, or `[scope]` for ungrouped ones.
    coords: Vec<MemberId>,
    /// Mixed-radix stride of this dimension.
    stride: u32,
    /// `leaf_to_coord[member.index()]` = coordinate index of a leaf member,
    /// or [`OUT_OF_SCOPE`].
    leaf_to_coord: Vec<u32>,
    /// `true` when the dimension contributes nothing to the aggregate
    /// index: ungrouped, unfiltered (scope = root), single coordinate —
    /// every leaf maps to coordinate 0. The columnar kernel skips such
    /// columns entirely.
    trivial: bool,
}

/// Dense mixed-radix layout of a query's result aggregates.
#[derive(Debug, Clone)]
pub struct ResultLayout {
    dims: Vec<DimLayout>,
    n_aggs: u32,
}

impl ResultLayout {
    /// Number of aggregates in the query result (`|q.aggs|`).
    pub fn n_aggregates(&self) -> usize {
        self.n_aggs as usize
    }

    /// Coordinate members of one dimension (grouping-level members for
    /// grouped dimensions, the single scope member otherwise).
    pub fn coords(&self, dim: DimId) -> &[MemberId] {
        &self.dims[dim.index()].coords
    }

    /// The scope member of a dimension (filter member or root).
    pub fn scope(&self, dim: DimId) -> MemberId {
        self.dims[dim.index()].scope
    }

    /// Grouping level of a dimension, if grouped.
    pub fn group_level(&self, dim: DimId) -> Option<LevelId> {
        self.dims[dim.index()].group_level
    }

    /// Map a fact row (leaf member per dimension) to its aggregate index,
    /// or `None` if the row falls outside the query scope.
    #[inline]
    pub fn agg_of_row(&self, members: &[MemberId]) -> Option<AggIdx> {
        debug_assert_eq!(members.len(), self.dims.len());
        let mut idx = 0u32;
        for (d, &m) in members.iter().enumerate() {
            let dl = &self.dims[d];
            let c = dl.leaf_to_coord[m.index()];
            if c == OUT_OF_SCOPE {
                return None;
            }
            idx += c * dl.stride;
        }
        Some(idx)
    }

    /// Columnar counterpart of [`ResultLayout::agg_of_row`]: resolve the
    /// aggregate indices of a whole scan block in per-column passes.
    ///
    /// `dims` are the chunk's per-dimension dictionary-id slices and `rows`
    /// the in-chunk indices of the block's rows (see
    /// `voxolap_data::table::RowBlock`). On return `out[i]` holds the
    /// aggregate index of the block's `i`-th row, or [`AGG_OUT_OF_SCOPE`].
    ///
    /// Instead of materializing a `&[MemberId]` per row, each dimension is
    /// walked as one tight loop over its narrow integer ids: the lookup
    /// table maps ids to coordinate contributions (`coord * stride`,
    /// filters already folded in as [`OUT_OF_SCOPE`] entries), and the
    /// out-of-scope sentinel is kept sticky by a saturating add — once a
    /// row is `u32::MAX` it stays there, because every legitimate partial
    /// sum is bounded by the aggregate count, which `QueryBuilder::build`
    /// caps below `u32::MAX`. Trivial dimensions (ungrouped, unfiltered)
    /// contribute nothing and are skipped without touching their column.
    pub fn agg_of_block(&self, dims: &[DimSlice<'_>], rows: &[u32], out: &mut Vec<u32>) {
        debug_assert_eq!(dims.len(), self.dims.len());
        out.clear();
        out.resize(rows.len(), 0);
        for (dl, ids) in self.dims.iter().zip(dims) {
            if dl.trivial {
                continue;
            }
            let lut = &dl.leaf_to_coord[..];
            let stride = dl.stride;
            macro_rules! accumulate {
                ($ids:expr) => {
                    for (o, &r) in out.iter_mut().zip(rows) {
                        let c = lut[$ids[r as usize] as usize];
                        *o = if c == OUT_OF_SCOPE {
                            AGG_OUT_OF_SCOPE
                        } else {
                            o.saturating_add(c * stride)
                        };
                    }
                };
            }
            match ids {
                DimSlice::U8(v) => accumulate!(v),
                DimSlice::U16(v) => accumulate!(v),
                DimSlice::U32(v) => accumulate!(v),
            }
        }
    }

    /// Decompose an aggregate index into per-dimension coordinate indices.
    pub fn coords_of_agg(&self, agg: AggIdx) -> Vec<u32> {
        let mut rem = agg;
        let mut out = vec![0u32; self.dims.len()];
        // Strides descend from the first dimension; divide greedily.
        for (d, dl) in self.dims.iter().enumerate() {
            out[d] = rem / dl.stride;
            rem %= dl.stride;
        }
        out
    }

    /// The per-dimension scope members of one aggregate (its conjunction of
    /// atomic conditions).
    pub fn scope_of_agg(&self, agg: AggIdx) -> Vec<MemberId> {
        self.coords_of_agg(agg)
            .iter()
            .enumerate()
            .map(|(d, &c)| self.dims[d].coords[c as usize])
            .collect()
    }

    /// Coordinate indices of `dim` lying at or below `member`
    /// (used to resolve refinement-predicate scopes).
    pub fn coord_indices_under(&self, dim: DimId, member: MemberId, schema: &Schema) -> Vec<u32> {
        let d = schema.dimension(dim);
        self.dims[dim.index()]
            .coords
            .iter()
            .enumerate()
            .filter(|(_, &c)| d.is_ancestor_or_self(member, c))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Per-dimension strides (for building scope bit tests downstream).
    pub fn stride(&self, dim: DimId) -> u32 {
        self.dims[dim.index()].stride
    }

    /// Radix (number of coordinates) of one dimension.
    pub fn radix(&self, dim: DimId) -> u32 {
        self.dims[dim.index()].coords.len() as u32
    }
}

/// An OLAP aggregation query bound to a schema.
#[derive(Debug, Clone)]
pub struct Query {
    fct: AggFct,
    measure: MeasureId,
    group: Vec<(DimId, LevelId)>,
    filters: Vec<(DimId, MemberId)>,
    layout: ResultLayout,
}

impl Query {
    /// Start building a query with the given aggregation function
    /// (over the primary measure; see [`QueryBuilder::measure`]).
    pub fn builder(fct: AggFct) -> QueryBuilder {
        QueryBuilder { fct, measure: MeasureId::PRIMARY, group: Vec::new(), filters: Vec::new() }
    }

    /// The aggregation function.
    pub fn fct(&self) -> AggFct {
        self.fct
    }

    /// The aggregated measure column.
    pub fn measure(&self) -> MeasureId {
        self.measure
    }

    /// Grouped dimensions with their grouping levels, in GROUP BY order.
    pub fn group_by(&self) -> &[(DimId, LevelId)] {
        &self.group
    }

    /// Filter restrictions (dimension, member).
    pub fn filters(&self) -> &[(DimId, MemberId)] {
        &self.filters
    }

    /// The result layout (aggregate enumeration).
    pub fn layout(&self) -> &ResultLayout {
        &self.layout
    }

    /// Number of result aggregates.
    pub fn n_aggregates(&self) -> usize {
        self.layout.n_aggregates()
    }

    /// The canonical cache key of this query (semantic cache, DESIGN.md §9).
    pub fn key(&self) -> QueryKey {
        QueryKey::canonical(self.fct, self.measure, &self.group, &self.filters)
    }
}

/// Canonical, hashable identity of a query for the semantic cache:
/// aggregation function, measure, and **sorted, deduplicated** group-by and
/// filter lists, so syntactically different but semantically identical
/// queries (filter order, repeated group-by entries) collide to one key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    fct: AggFct,
    measure: MeasureId,
    group: Vec<(DimId, LevelId)>,
    filters: Vec<(DimId, MemberId)>,
}

impl QueryKey {
    /// Canonicalize raw query components into a key: group-by and filter
    /// lists are sorted by dimension and deduplicated.
    pub fn canonical(
        fct: AggFct,
        measure: MeasureId,
        group: &[(DimId, LevelId)],
        filters: &[(DimId, MemberId)],
    ) -> Self {
        let mut group = group.to_vec();
        group.sort_unstable();
        group.dedup();
        let mut filters = filters.to_vec();
        filters.sort_unstable();
        filters.dedup();
        QueryKey { fct, measure, group, filters }
    }

    /// The aggregation function of the keyed query.
    pub fn fct(&self) -> AggFct {
        self.fct
    }

    /// The scope key shared by every query over the same row set.
    pub fn scope(&self) -> ScopeKey {
        ScopeKey { measure: self.measure, filters: self.filters.clone() }
    }
}

/// What determines a query's **in-scope row set**: the measure column and
/// the canonical filter list. Group-by clauses merely partition the scope,
/// so two queries sharing a `ScopeKey` observe exactly the same rows under
/// the same seeded scan — the compatibility condition for warm-starting one
/// query's sample cache from another's sampled rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScopeKey {
    measure: MeasureId,
    filters: Vec<(DimId, MemberId)>,
}

impl ScopeKey {
    /// The measure column the scoped rows carry.
    pub fn measure(&self) -> MeasureId {
        self.measure
    }

    /// Canonical filter restrictions defining the row set.
    pub fn filters(&self) -> &[(DimId, MemberId)] {
        &self.filters
    }
}

/// Builder for [`Query`] — validates against a schema in
/// [`QueryBuilder::build`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    fct: AggFct,
    measure: MeasureId,
    group: Vec<(DimId, LevelId)>,
    filters: Vec<(DimId, MemberId)>,
}

impl QueryBuilder {
    /// Aggregate measure `m` instead of the primary measure (the paper's
    /// "multiple columns" extension).
    pub fn measure(mut self, m: MeasureId) -> Self {
        self.measure = m;
        self
    }

    /// Break the result down by `dim` at `level`
    /// (the paper's "Results are broken down by …").
    pub fn group_by(mut self, dim: DimId, level: LevelId) -> Self {
        self.group.push((dim, level));
        self
    }

    /// Restrict the query scope to rows under `member` of `dim`.
    pub fn filter(mut self, dim: DimId, member: MemberId) -> Self {
        self.filters.push((dim, member));
        self
    }

    /// Validate against `schema` and compute the result layout.
    pub fn build(self, schema: &Schema) -> Result<Query, EngineError> {
        let n_dims = schema.dimensions().len();
        if self.measure.index() >= schema.measure_count() {
            return Err(EngineError::BadMeasure { measure: self.measure.index() });
        }

        // Validate group entries.
        let mut group_of_dim: Vec<Option<LevelId>> = vec![None; n_dims];
        for &(dim, level) in &self.group {
            if dim.index() >= n_dims {
                return Err(EngineError::BadGroupLevel { dim: dim.index(), level: level.index() });
            }
            let d = schema.dimension(dim);
            if level.index() == 0 || level.index() >= d.level_count() {
                return Err(EngineError::BadGroupLevel { dim: dim.index(), level: level.index() });
            }
            if group_of_dim[dim.index()].is_some() {
                return Err(EngineError::DuplicateGroupDim { dim: dim.index() });
            }
            group_of_dim[dim.index()] = Some(level);
        }

        // Validate filters; at most one per dimension (later wins replaced
        // by error keeps semantics simple).
        let mut filter_of_dim: Vec<Option<MemberId>> = vec![None; n_dims];
        for &(dim, member) in &self.filters {
            if dim.index() >= n_dims {
                return Err(EngineError::BadFilterMember {
                    dim: dim.index(),
                    member: member.index(),
                });
            }
            let d = schema.dimension(dim);
            if member.index() >= d.member_count() {
                return Err(EngineError::BadFilterMember {
                    dim: dim.index(),
                    member: member.index(),
                });
            }
            if filter_of_dim[dim.index()].is_some() {
                return Err(EngineError::BadFilterMember {
                    dim: dim.index(),
                    member: member.index(),
                });
            }
            filter_of_dim[dim.index()] = Some(member);
        }

        // Build per-dimension layouts.
        let mut dims = Vec::with_capacity(n_dims);
        for (dim_id, d) in schema.dims() {
            let scope = filter_of_dim[dim_id.index()].unwrap_or_else(|| d.root());
            let group_level = group_of_dim[dim_id.index()];
            let coords: Vec<MemberId> = match group_level {
                Some(level) => {
                    // A filter deeper than the grouping level would make the
                    // grouping degenerate; require filter at or above level.
                    if d.member(scope).level.index() > level.index() {
                        return Err(EngineError::BadGroupLevel {
                            dim: dim_id.index(),
                            level: level.index(),
                        });
                    }
                    d.level_members(level)
                        .into_iter()
                        .filter(|&m| d.is_ancestor_or_self(scope, m))
                        .collect()
                }
                None => vec![scope],
            };
            if coords.is_empty() {
                return Err(EngineError::EmptyResult);
            }
            // Leaf lookup table: coordinate index per leaf, OUT_OF_SCOPE if
            // the leaf is not under any coordinate.
            let mut leaf_to_coord = vec![OUT_OF_SCOPE; d.member_count()];
            for (ci, &c) in coords.iter().enumerate() {
                for leaf in d.leaves_under(c) {
                    leaf_to_coord[leaf.index()] = ci as u32;
                }
            }
            // Ungrouped, unfiltered dimensions map every leaf to the root
            // coordinate: zero contribution, never out of scope.
            let trivial = group_level.is_none() && scope == d.root();
            dims.push(DimLayout {
                scope,
                group_level,
                coords,
                stride: 0, // fixed below
                leaf_to_coord,
                trivial,
            });
        }

        // Mixed-radix strides: last dimension is the fastest-varying.
        let mut stride = 1u64;
        for dl in dims.iter_mut().rev() {
            dl.stride = stride as u32;
            stride *= dl.coords.len() as u64;
        }
        if stride == 0 || stride > u32::MAX as u64 {
            return Err(EngineError::EmptyResult);
        }

        Ok(Query {
            fct: self.fct,
            measure: self.measure,
            group: self.group,
            filters: self.filters,
            layout: ResultLayout { dims, n_aggs: stride as u32 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::salary::SalaryConfig;

    fn salary_schema() -> Schema {
        SalaryConfig::schema(320)
    }

    #[test]
    fn region_by_rough_salary_has_eight_aggregates() {
        let schema = salary_schema();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(&schema)
            .unwrap();
        assert_eq!(q.n_aggregates(), 4 * 2);
        assert_eq!(q.layout().radix(DimId(0)), 4);
        assert_eq!(q.layout().radix(DimId(1)), 2);
    }

    #[test]
    fn flights_region_season_has_twenty_aggregates() {
        // Paper Table 12: 5 regions x 4 seasons = 20 result fields.
        let schema = FlightsConfig::schema();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(&schema)
            .unwrap();
        assert_eq!(q.n_aggregates(), 20);
    }

    #[test]
    fn filter_restricts_coordinates() {
        let schema = FlightsConfig::schema();
        let airport = schema.dimension(DimId(0));
        let ne = airport.member_by_phrase("the North East").unwrap();
        // Filter North East, group by state: only NE states remain.
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(0), ne)
            .group_by(DimId(0), LevelId(2))
            .build(&schema)
            .unwrap();
        assert_eq!(q.layout().radix(DimId(0)), 5); // 5 NE states
        assert_eq!(q.layout().radix(DimId(1)), 1);
        assert_eq!(q.layout().radix(DimId(2)), 1);
        assert_eq!(q.n_aggregates(), 5);
    }

    #[test]
    fn agg_of_row_respects_scope() {
        let schema = FlightsConfig::schema();
        let airport = schema.dimension(DimId(0));
        let ne = airport.member_by_phrase("the North East").unwrap();
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(0), ne)
            .group_by(DimId(1), LevelId(1))
            .build(&schema)
            .unwrap();

        let date = schema.dimension(DimId(1));
        let airline = schema.dimension(DimId(2));
        let ne_leaf = airport.leaves_under(ne)[0];
        let other_leaf =
            *airport.leaves().iter().find(|&&l| !airport.is_ancestor_or_self(ne, l)).unwrap();
        let june = date.member_by_phrase("June").unwrap();
        let any_airline = airline.leaves()[0];

        let in_scope = q.layout().agg_of_row(&[ne_leaf, june, any_airline]);
        assert!(in_scope.is_some());
        let out = q.layout().agg_of_row(&[other_leaf, june, any_airline]);
        assert_eq!(out, None);
    }

    #[test]
    fn agg_of_block_matches_agg_of_row() {
        // A filtered query (out-of-scope rows exercise the sticky
        // sentinel) over a real generated table, scanned in blocks.
        let table = FlightsConfig::small().generate();
        let schema = table.schema();
        let airport = schema.dimension(DimId(0));
        let ne = airport.member_by_phrase("the North East").unwrap();
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(0), ne)
            .group_by(DimId(1), LevelId(1))
            .build(schema)
            .unwrap();
        let layout = q.layout();
        let mut scan = table.scan_shuffled(13);
        let mut out = Vec::new();
        let mut seen_out_of_scope = false;
        let mut rows_total = 0usize;
        // Odd block size exercises mid-morsel block boundaries.
        while let Some(b) = scan.next_block(97) {
            layout.agg_of_block(b.dims, b.rows, &mut out);
            assert_eq!(out.len(), b.rows.len());
            for (i, &r) in b.rows.iter().enumerate() {
                let members: Vec<MemberId> = b.dims.iter().map(|d| d.get(r as usize)).collect();
                assert_eq!(decode_agg(out[i]), layout.agg_of_row(&members));
                seen_out_of_scope |= out[i] == AGG_OUT_OF_SCOPE;
            }
            rows_total += b.rows.len();
        }
        assert_eq!(rows_total, table.row_count());
        assert!(seen_out_of_scope, "filter leaves some rows out of scope");
    }

    #[test]
    fn decode_agg_maps_sentinel_to_none() {
        assert_eq!(decode_agg(AGG_OUT_OF_SCOPE), None);
        assert_eq!(decode_agg(0), Some(0));
        assert_eq!(decode_agg(u32::MAX - 1), Some(u32::MAX - 1));
    }

    #[test]
    fn coords_of_agg_roundtrip() {
        let schema = salary_schema();
        let q = Query::builder(AggFct::Sum)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(2))
            .build(&schema)
            .unwrap();
        let layout = q.layout();
        for agg in 0..layout.n_aggregates() as u32 {
            let coords = layout.coords_of_agg(agg);
            let rebuilt: u32 =
                coords.iter().enumerate().map(|(d, &c)| c * layout.stride(DimId(d as u8))).sum();
            assert_eq!(rebuilt, agg);
        }
    }

    #[test]
    fn scope_of_agg_lists_scope_members() {
        let schema = salary_schema();
        let q = Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).build(&schema).unwrap();
        let scope = q.layout().scope_of_agg(0);
        assert_eq!(scope.len(), 2);
        let college = schema.dimension(DimId(0));
        assert_eq!(college.member(scope[0]).level, LevelId(1));
        // Ungrouped dimension scope is the root.
        let salary = schema.dimension(DimId(1));
        assert_eq!(scope[1], salary.root());
    }

    #[test]
    fn coord_indices_under_region() {
        let schema = FlightsConfig::schema();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(2)) // by state
            .build(&schema)
            .unwrap();
        let airport = schema.dimension(DimId(0));
        let ne = airport.member_by_phrase("the North East").unwrap();
        let under = q.layout().coord_indices_under(DimId(0), ne, &schema);
        assert_eq!(under.len(), 5); // 5 NE states
                                    // Root covers all coordinates.
        let all = q.layout().coord_indices_under(DimId(0), airport.root(), &schema);
        assert_eq!(all.len(), q.layout().radix(DimId(0)) as usize);
    }

    #[test]
    fn duplicate_group_dim_rejected() {
        let schema = salary_schema();
        let err = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(0), LevelId(2))
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, EngineError::DuplicateGroupDim { dim: 0 }));
    }

    #[test]
    fn root_level_grouping_rejected() {
        let schema = salary_schema();
        let err =
            Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(0)).build(&schema).unwrap_err();
        assert!(matches!(err, EngineError::BadGroupLevel { .. }));
    }

    #[test]
    fn filter_below_group_level_rejected() {
        let schema = FlightsConfig::schema();
        let airport = schema.dimension(DimId(0));
        let city = airport.member_by_phrase("Boston").unwrap();
        // Filter at city level but group by region (coarser) is degenerate.
        let err = Query::builder(AggFct::Avg)
            .filter(DimId(0), city)
            .group_by(DimId(0), LevelId(1))
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, EngineError::BadGroupLevel { .. }));
    }

    #[test]
    fn two_filters_on_same_dim_rejected() {
        let schema = FlightsConfig::schema();
        let airport = schema.dimension(DimId(0));
        let ne = airport.member_by_phrase("the North East").unwrap();
        let mw = airport.member_by_phrase("the Midwest").unwrap();
        let err = Query::builder(AggFct::Avg)
            .filter(DimId(0), ne)
            .filter(DimId(0), mw)
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, EngineError::BadFilterMember { .. }));
    }

    #[test]
    fn query_key_collides_for_reordered_filters_and_groups() {
        let schema = FlightsConfig::schema();
        let airport = schema.dimension(DimId(0));
        let date = schema.dimension(DimId(1));
        let ne = airport.member_by_phrase("the North East").unwrap();
        let winter = date.member_by_phrase("Winter").unwrap();
        let a = Query::builder(AggFct::Avg)
            .filter(DimId(0), ne)
            .filter(DimId(1), winter)
            .group_by(DimId(1), LevelId(2))
            .group_by(DimId(2), LevelId(1))
            .build(&schema)
            .unwrap();
        let b = Query::builder(AggFct::Avg)
            .filter(DimId(1), winter)
            .filter(DimId(0), ne)
            .group_by(DimId(2), LevelId(1))
            .group_by(DimId(1), LevelId(2))
            .build(&schema)
            .unwrap();
        assert_eq!(a.key(), b.key(), "filter/group order is not semantic");
        assert_eq!(a.key().scope(), b.key().scope());
    }

    #[test]
    fn query_key_canonicalizes_duplicate_group_entries() {
        // `Query::build` rejects duplicate group dimensions, so exercise the
        // canonicalizer directly: a repeated group-by entry must collapse.
        let dup = QueryKey::canonical(
            AggFct::Sum,
            MeasureId(0),
            &[(DimId(1), LevelId(1)), (DimId(0), LevelId(2)), (DimId(1), LevelId(1))],
            &[],
        );
        let single = QueryKey::canonical(
            AggFct::Sum,
            MeasureId(0),
            &[(DimId(0), LevelId(2)), (DimId(1), LevelId(1))],
            &[],
        );
        assert_eq!(dup, single);
    }

    #[test]
    fn query_key_distinguishes_semantic_differences() {
        let schema = FlightsConfig::schema();
        let base = Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1));
        let a = base.clone().build(&schema).unwrap();
        let sum = Query::builder(AggFct::Sum).group_by(DimId(0), LevelId(1));
        let b = sum.build(&schema).unwrap();
        assert_ne!(a.key(), b.key(), "aggregation function is semantic");
        assert_eq!(a.key().scope(), b.key().scope(), "but the row scope is shared");
        let c = base.build(&schema);
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let filtered =
            Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).filter(DimId(0), ne);
        let d = filtered.build(&schema).unwrap();
        assert_ne!(c.unwrap().key().scope(), d.key().scope(), "filters change the scope");
    }

    #[test]
    fn spoken_aggregation_names() {
        assert_eq!(AggFct::Avg.spoken(), "average");
        assert_eq!(AggFct::Sum.spoken(), "total");
        assert_eq!(AggFct::Count.spoken(), "number of");
    }
}
