//! Striped sample cache for parallel row ingestion.
//!
//! [`ShardedSampleCache`] is the multi-threaded counterpart of
//! [`SampleCache`](crate::cache::SampleCache): N ingestion workers claim
//! disjoint morsels from a shared pool (see `Table::scan_pooled`) and
//! stream them into one shared cache concurrently. Contention is kept off
//! the hot path by striping state per aggregate:
//!
//! * each aggregate's value bucket sits behind its **own** mutex, so two
//!   workers only contend when their rows land in the same aggregate;
//! * the global counters (`nr_read`, per-aggregate offered counts, scope
//!   count/sum) are atomics — `nr_read` in particular is bumped once per
//!   row by every worker and must not serialize them;
//! * the non-empty aggregate list used by `PickAggregate` is a lock-free
//!   append-only array (capacity = number of aggregates, slots reserved by
//!   `fetch_add`, published by store) — `pick_aggregate` runs every planner
//!   iteration on every thread and must not take a global lock.
//!
//! Readers (planner sampling threads) see a **merged view**: `estimate`,
//! `pick_aggregate`, and `overall_estimate` have the same semantics as the
//! sequential cache, computed over the union of all workers' insertions.
//! Since the pool hands out whole chunks of the seeded two-level scan
//! order, the union of the workers' progress at any point is a prefix of
//! that order — a uniform random subset of the table, which is the
//! property all the paper's estimators rest on (see
//! `voxolap_data::chunk` for the uniformity argument).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, MutexGuard};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use voxolap_data::dimension::MemberId;
use voxolap_faults::{DegradeStats, FaultInjector, FaultSite};

use crate::cache::{
    estimate_from_resample, resample_into_scratch, CacheEstimate, ResampleScratch,
    DEFAULT_RESAMPLE_SIZE,
};
use crate::poison::RecoveringMutex;
use crate::query::{AggFct, AggIdx, ResultLayout, AGG_OUT_OF_SCOPE};

/// Add `delta` to an `f64` held as bits in an [`AtomicU64`].
///
/// All-`Relaxed`: the cell is a pure accumulator — no other memory is
/// published through it, and the CAS's read-modify-write atomicity alone
/// guarantees no increment is lost.
#[inline]
fn fetch_add_f64(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Sentinel marking a reserved-but-not-yet-written `nonempty` slot.
const UNPUBLISHED: u32 = u32::MAX;

/// One aggregate's mutable state: the cached values plus the reservoir
/// RNG for eviction decisions. Locked independently of all other buckets.
#[derive(Debug)]
struct Bucket {
    values: Vec<f64>,
    evict_rng: StdRng,
}

/// Thread-local accumulator for one morsel's rows, drained into the cache
/// by [`ShardedSampleCache::observe_batch`] — the group-commit half of the
/// batched ingest protocol (DESIGN.md §14).
///
/// A worker resolves a whole scan block's aggregate codes first (see
/// `ResultLayout::agg_of_block`), pushes each row here, then commits once:
/// per-aggregate value groups amortize one bucket-lock acquisition over
/// every row of the batch landing in that aggregate, while `scope_vals`
/// keeps the in-scope values in scan order so the scope-sum fold preserves
/// the sequential cache's floating-point association (threads=1
/// bit-parity).
///
/// The per-aggregate vectors persist across batches (`clear` is
/// `O(touched)`, not `O(n_aggregates)`), so a long-lived worker reuses its
/// allocations for the whole run.
#[derive(Debug)]
pub struct IngestBatch {
    /// Rows accumulated, in-scope or not.
    rows: u64,
    /// Aggregates with ≥ 1 value this batch, in first-touch order.
    touched: Vec<AggIdx>,
    /// `per_agg[a]` = this batch's in-scope values of aggregate `a`, in
    /// scan order (empty for untouched aggregates).
    per_agg: Vec<Vec<f64>>,
    /// All in-scope values of the batch, in scan order across aggregates.
    scope_vals: Vec<f64>,
}

impl IngestBatch {
    /// An empty batch for a query with `n_aggregates` result fields.
    pub fn new(n_aggregates: usize) -> Self {
        IngestBatch {
            rows: 0,
            touched: Vec::new(),
            per_agg: (0..n_aggregates).map(|_| Vec::new()).collect(),
            scope_vals: Vec::new(),
        }
    }

    /// Accumulate one row by its raw aggregate code
    /// ([`AGG_OUT_OF_SCOPE`] = out of scope), as produced by
    /// `ResultLayout::agg_of_block`.
    #[inline]
    pub fn push_resolved(&mut self, code: u32, value: f64) {
        self.rows += 1;
        if code == AGG_OUT_OF_SCOPE {
            return;
        }
        let bucket = &mut self.per_agg[code as usize];
        if bucket.is_empty() {
            self.touched.push(code);
        }
        bucket.push(value);
        self.scope_vals.push(value);
    }

    /// Accumulate one row by its `Option`-typed aggregate.
    #[inline]
    pub fn push(&mut self, agg: Option<AggIdx>, value: f64) {
        self.push_resolved(agg.unwrap_or(AGG_OUT_OF_SCOPE), value);
    }

    /// Rows accumulated since the last commit (in-scope or not).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// `true` when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Reset for the next batch, keeping all allocations.
    fn clear(&mut self) {
        for &a in &self.touched {
            self.per_agg[a as usize].clear();
        }
        self.touched.clear();
        self.scope_vals.clear();
        self.rows = 0;
    }
}

/// Concurrent, per-aggregate-striped sample cache (see module docs).
#[derive(Debug)]
pub struct ShardedSampleCache {
    /// Per-aggregate value buckets. Poison-recovering: a holder dying
    /// mid-update (real panic or injected tear) costs that bucket its
    /// cached values on the next access — never the whole cache.
    buckets: Vec<RecoveringMutex<Bucket>>,
    /// Rows offered per aggregate (drives count estimates + reservoir).
    ///
    /// Ordering: `Relaxed`. A monotonic statistical counter — nothing is
    /// published through it; the bucket contents it describes sit behind
    /// their own mutex (whose lock/unlock pair orders them), and readers
    /// that need a consistent final value (`exact_result`) only run after
    /// the worker threads were joined, which is itself a happens-before
    /// edge covering every `Relaxed` store.
    offered: Vec<AtomicU64>,
    /// Whether the aggregate is already in `nonempty`.
    ///
    /// Ordering: the `swap(true, AcqRel)` is the claim on the right to
    /// append to `nonempty`; it must not be reordered after the slot
    /// store, and losers must see the winner's claim.
    listed: Vec<AtomicBool>,
    /// Aggregates with ≥ 1 cached entry, for uniform random picks:
    /// a lock-free append-only array. `nonempty_len` reserves slots;
    /// unpublished slots hold [`UNPUBLISHED`] for a few nanoseconds until
    /// the appender's store lands.
    ///
    /// Ordering: slot stores are `Release` and reader loads `Acquire` —
    /// this pair is a real publication edge (the slot value gates reads
    /// of the bucket it names) and stays strong.
    nonempty: Vec<AtomicU32>,
    nonempty_len: AtomicUsize,
    /// Total rows ever observed (`CA.NRREAD`).
    ///
    /// Ordering: `Relaxed`. Like `offered`, a monotonic counter with no
    /// release-dependent payload: estimators divide by it, and a reader
    /// racing an ingest batch merely sees a slightly staler prefix —
    /// statistically indistinguishable from sampling a moment earlier.
    nr_read: AtomicU64,
    nr_rows_total: u64,
    resample_size: usize,
    bucket_capacity: Option<usize>,
    /// In-scope row count across all aggregates (overall estimates).
    ///
    /// Ordering: `Relaxed`, same monotonic-counter argument as `nr_read`.
    scope_count: AtomicU64,
    /// In-scope measure sum as `f64` bits (see [`fetch_add_f64`]).
    scope_sum_bits: AtomicU64,
    /// Buckets rebuilt after lock poisoning / torn state.
    poison_recoveries: AtomicU64,
    /// Fault injection at the CacheShard site (chaos testing only).
    faults: Option<Arc<FaultInjector>>,
    /// Process-wide degradation counters recoveries are mirrored into.
    degrade_stats: Option<Arc<DegradeStats>>,
}

impl ShardedSampleCache {
    /// Create an empty cache for a query with `n_aggregates` result fields
    /// over a table of `nr_rows_total` rows.
    pub fn new(n_aggregates: usize, nr_rows_total: u64) -> Self {
        ShardedSampleCache {
            buckets: (0..n_aggregates)
                .map(|a| {
                    RecoveringMutex::new(Bucket {
                        values: Vec::new(),
                        // Same base seed as the sequential cache, distinct
                        // stream per stripe.
                        evict_rng: StdRng::seed_from_u64(0x5eed_cafe ^ a as u64),
                    })
                })
                .collect(),
            offered: (0..n_aggregates).map(|_| AtomicU64::new(0)).collect(),
            listed: (0..n_aggregates).map(|_| AtomicBool::new(false)).collect(),
            nonempty: (0..n_aggregates).map(|_| AtomicU32::new(UNPUBLISHED)).collect(),
            nonempty_len: AtomicUsize::new(0),
            nr_read: AtomicU64::new(0),
            nr_rows_total,
            resample_size: DEFAULT_RESAMPLE_SIZE,
            bucket_capacity: None,
            scope_count: AtomicU64::new(0),
            scope_sum_bits: AtomicU64::new(0f64.to_bits()),
            poison_recoveries: AtomicU64::new(0),
            faults: None,
            degrade_stats: None,
        }
    }

    /// Attach a fault injector (CacheShard site) and the degradation
    /// counters recoveries feed. Without this, the observe hot path pays
    /// a single `Option` branch.
    pub fn with_faults(mut self, injector: Arc<FaultInjector>, stats: Arc<DegradeStats>) -> Self {
        self.faults = Some(injector);
        self.degrade_stats = Some(stats);
        self
    }

    /// Lock one aggregate's bucket, rebuilding it first if its previous
    /// holder died mid-update. A rebuilt bucket loses its cached values
    /// (the atomic `offered` counts survive, so count estimates stay
    /// unbiased — exactly as if every entry had been evicted) and is
    /// counted in [`poison_recoveries`](ShardedSampleCache::poison_recoveries).
    fn bucket(&self, a: usize) -> MutexGuard<'_, Bucket> {
        self.buckets[a].lock_recovering(|bucket| {
            bucket.values = Vec::new();
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            if let Some(stats) = &self.degrade_stats {
                stats.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            }
        })
    }

    /// Buckets rebuilt after lock poisoning / injected tears so far.
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Override the fixed resample size.
    pub fn with_resample_size(mut self, size: usize) -> Self {
        assert!(size > 0, "resample size must be positive");
        self.resample_size = size;
        self
    }

    /// Bound memory: at most `capacity` entries per aggregate bucket,
    /// maintained as a uniform reservoir sample of the rows offered to it.
    pub fn with_bucket_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "bucket capacity must be positive");
        self.bucket_capacity = Some(capacity);
        self
    }

    /// Observe one streamed row (callable from any worker thread
    /// concurrently): `agg` is its aggregate (`None` when out of scope),
    /// `value` its measure.
    pub fn observe(&self, agg: Option<AggIdx>, value: f64) {
        self.nr_read.fetch_add(1, Ordering::Relaxed);
        let Some(a) = agg else { return };
        // CacheShard fault site: model a worker dying while holding this
        // bucket's lock — the bucket is marked torn and the very next
        // locker (often this call) rebuilds it.
        if let Some(inj) = &self.faults {
            if let Some(fault) = inj.roll(FaultSite::CacheShard) {
                fault.stall();
                if fault.error {
                    self.buckets[a as usize].mark_torn();
                }
            }
        }
        let offered = self.offered[a as usize].fetch_add(1, Ordering::Relaxed) + 1;
        {
            let bucket = &mut *self.bucket(a as usize);
            match self.bucket_capacity {
                Some(cap) if bucket.values.len() >= cap => {
                    // Reservoir replacement: the new row displaces a random
                    // cached one with probability cap / offered.
                    let slot = bucket.evict_rng.gen_range(0..offered);
                    if (slot as usize) < cap {
                        bucket.values[slot as usize] = value;
                    }
                }
                _ => bucket.values.push(value),
            }
        }
        self.publish_nonempty(a);
        self.scope_count.fetch_add(1, Ordering::Relaxed);
        fetch_add_f64(&self.scope_sum_bits, value);
    }

    /// Add aggregate `a` to the `nonempty` array exactly once (first
    /// in-scope row wins the `listed` claim).
    #[inline]
    fn publish_nonempty(&self, a: AggIdx) {
        if !self.listed[a as usize].swap(true, Ordering::AcqRel) {
            let slot = self.nonempty_len.fetch_add(1, Ordering::AcqRel);
            self.nonempty[slot].store(a, Ordering::Release);
        }
    }

    /// Observe a raw fact row, resolving its aggregate through `layout`.
    pub fn observe_row(&self, layout: &ResultLayout, members: &[MemberId], value: f64) {
        self.observe(layout.agg_of_row(members), value);
    }

    /// Group-commit one accumulated morsel batch and clear it — the
    /// batched counterpart of per-row [`ShardedSampleCache::observe`]
    /// (DESIGN.md §14). Per batch this costs: one `Relaxed` add to
    /// `nr_read`; per *touched aggregate* one fault roll, one `offered`
    /// add, and one bucket-lock acquisition; one `scope_count` add; and a
    /// single scope-sum CAS — versus one of each **per row** on the
    /// row-at-a-time path.
    ///
    /// Equivalence with row-at-a-time ingest: each bucket receives its
    /// rows in scan order with the same running `offered` count per offer,
    /// so reservoir decisions consume that bucket's private RNG stream
    /// identically (per-bucket streams are independent, making the
    /// cross-bucket interleaving irrelevant); the scope sum is folded over
    /// `scope_vals` in scan order starting from the current global value,
    /// reproducing the sequential association bit for bit when only one
    /// writer is active. Counters advance at batch rather than row
    /// granularity, which no reader can distinguish from having sampled a
    /// moment earlier. The `CacheShard` fault site rolls once per touched
    /// aggregate (the unit of lock tenure) instead of once per row.
    pub fn observe_batch(&self, batch: &mut IngestBatch) {
        if batch.rows == 0 {
            return;
        }
        self.nr_read.fetch_add(batch.rows, Ordering::Relaxed);
        for &a in &batch.touched {
            let vals = &batch.per_agg[a as usize];
            // CacheShard fault site: a tear while holding this bucket's
            // lock; the recovery path below rebuilds it on acquisition.
            if let Some(inj) = &self.faults {
                if let Some(fault) = inj.roll(FaultSite::CacheShard) {
                    fault.stall();
                    if fault.error {
                        self.buckets[a as usize].mark_torn();
                    }
                }
            }
            let offered0 = self.offered[a as usize].fetch_add(vals.len() as u64, Ordering::Relaxed);
            {
                let bucket = &mut *self.bucket(a as usize);
                match self.bucket_capacity {
                    Some(cap) => {
                        for (i, &value) in vals.iter().enumerate() {
                            let offered = offered0 + i as u64 + 1;
                            if bucket.values.len() >= cap {
                                let slot = bucket.evict_rng.gen_range(0..offered);
                                if (slot as usize) < cap {
                                    bucket.values[slot as usize] = value;
                                }
                            } else {
                                bucket.values.push(value);
                            }
                        }
                    }
                    None => bucket.values.extend_from_slice(vals),
                }
            }
            self.publish_nonempty(a);
        }
        if !batch.scope_vals.is_empty() {
            self.scope_count.fetch_add(batch.scope_vals.len() as u64, Ordering::Relaxed);
            // Scan-order fold from the current global sum (not a
            // pre-summed delta): float addition is non-associative, and
            // this keeps the single-writer result bit-identical to per-row
            // accumulation. A lost CAS race refolds — batches are rare
            // enough that contention is negligible.
            let mut cur = self.scope_sum_bits.load(Ordering::Relaxed);
            loop {
                let next =
                    batch.scope_vals.iter().fold(f64::from_bits(cur), |s, &v| s + v).to_bits();
                match self.scope_sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
        batch.clear();
    }

    /// Warm-start a fresh cache from rows another query sampled over the
    /// same scope under the same seeded scan — the sharded counterpart of
    /// `SampleCache::seed_rows`: re-bucket each logged in-scope row through
    /// this query's `layout`, then set `nr_read` to the donor's scan-prefix
    /// length (which counts out-of-scope rows too). Call before any worker
    /// starts observing.
    pub fn seed_rows<'r, I>(&self, layout: &ResultLayout, rows: I, nr_read: u64)
    where
        I: IntoIterator<Item = (&'r [MemberId], f64)>,
    {
        assert_eq!(self.nr_read(), 0, "seed_rows requires a fresh cache");
        for (members, value) in rows {
            self.observe(layout.agg_of_row(members), value);
        }
        // Relaxed: seeding happens before any worker thread is spawned,
        // and the spawn itself is the happens-before edge publishing it.
        self.nr_read.store(nr_read, Ordering::Relaxed);
    }

    /// The exact per-aggregate `(counts, sums)` of the query once the whole
    /// table was streamed into an uncapped cache; `None` while the scan is
    /// partial or rows may have been evicted (see
    /// `SampleCache::exact_result`).
    pub fn exact_result(&self) -> Option<(Vec<u64>, Vec<f64>)> {
        if self.bucket_capacity.is_some() || self.nr_read() < self.nr_rows_total {
            return None;
        }
        // A rebuilt bucket lost values: sums would silently undercount,
        // so a recovered cache never claims exactness.
        if self.poison_recoveries() > 0 {
            return None;
        }
        // Relaxed: callers only get a `Some` after the ingest threads were
        // joined (nr_read == total), and the join orders their stores.
        let counts = self.offered.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        let sums: Vec<f64> =
            (0..self.buckets.len()).map(|a| self.bucket(a).values.iter().sum()).collect();
        // Re-check: a tear recovered *while* summing also voids exactness.
        if self.poison_recoveries() > 0 {
            return None;
        }
        Some((counts, sums))
    }

    /// Number of cached entries for one aggregate (`CA.SIZE`).
    pub fn size(&self, agg: AggIdx) -> usize {
        self.bucket(agg as usize).values.len()
    }

    /// Total rows ever offered to one aggregate's bucket (counting past
    /// evictions, so count estimates stay unbiased).
    pub fn seen(&self, agg: AggIdx) -> u64 {
        self.offered[agg as usize].load(Ordering::Relaxed)
    }

    /// Total rows considered so far across all workers (`CA.NRREAD`).
    pub fn nr_read(&self) -> u64 {
        self.nr_read.load(Ordering::Relaxed)
    }

    /// Total rows of the underlying table.
    pub fn nr_rows_total(&self) -> u64 {
        self.nr_rows_total
    }

    /// Number of aggregates with at least one cached entry.
    pub fn nonempty_count(&self) -> usize {
        self.nonempty_len.load(Ordering::Acquire)
    }

    /// Merged `PickAggregate` view: uniform over all aggregates for
    /// COUNT/SUM, uniform over the non-empty ones for AVG.
    pub fn pick_aggregate<R: Rng + ?Sized>(&self, fct: AggFct, rng: &mut R) -> Option<AggIdx> {
        match fct {
            AggFct::Count | AggFct::Sum => {
                if self.buckets.is_empty() {
                    None
                } else {
                    Some(rng.gen_range(0..self.buckets.len()) as AggIdx)
                }
            }
            AggFct::Avg => {
                let len = self.nonempty_len.load(Ordering::Acquire);
                if len == 0 {
                    return None;
                }
                let i = rng.gen_range(0..len);
                // Spin on the one unpublished slot we may have raced with —
                // retrying the same slot (not redrawing) keeps the RNG
                // stream identical to the sequential cache's.
                loop {
                    let v = self.nonempty[i].load(Ordering::Acquire);
                    if v != UNPUBLISHED {
                        return Some(v);
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Allocation-free fixed-size uniform subsample of one aggregate's
    /// cached entries; holds the bucket's lock only while copying.
    pub fn resample_into<'s, R: Rng + ?Sized>(
        &self,
        agg: AggIdx,
        rng: &mut R,
        scratch: &'s mut ResampleScratch,
    ) -> &'s [f64] {
        let bucket = self.bucket(agg as usize);
        resample_into_scratch(&bucket.values, self.resample_size, rng, scratch);
        drop(bucket);
        &scratch.out
    }

    /// Merged cache estimate for one aggregate, same estimators as the
    /// sequential cache (`e_C = nrRows · seen / nrRead`, etc.). `None`
    /// before any row was read.
    pub fn estimate_with<R: Rng + ?Sized>(
        &self,
        agg: AggIdx,
        rng: &mut R,
        scratch: &mut ResampleScratch,
    ) -> Option<CacheEstimate> {
        let nr_read = self.nr_read();
        if nr_read == 0 {
            return None;
        }
        let e_c = self.nr_rows_total as f64 * self.seen(agg) as f64 / nr_read as f64;
        let v = self.resample_into(agg, rng, scratch);
        Some(estimate_from_resample(e_c, v))
    }

    /// Estimate of the query-scope-wide aggregate value (see the
    /// sequential cache for semantics).
    pub fn overall_estimate(&self, fct: AggFct) -> Option<f64> {
        let nr_read = self.nr_read();
        if nr_read == 0 {
            return None;
        }
        let scope_count = self.scope_count.load(Ordering::Relaxed);
        let scope_sum = f64::from_bits(self.scope_sum_bits.load(Ordering::Relaxed));
        let e_c = self.nr_rows_total as f64 * scope_count as f64 / nr_read as f64;
        match fct {
            AggFct::Count => Some(e_c),
            AggFct::Sum => {
                if scope_count == 0 {
                    Some(0.0)
                } else {
                    Some(e_c * scope_sum / scope_count as f64)
                }
            }
            AggFct::Avg => {
                if scope_count == 0 {
                    None
                } else {
                    Some(scope_sum / scope_count as f64)
                }
            }
        }
    }

    /// Normal-approximation confidence interval for one aggregate's
    /// average at `z` standard errors, over all cached entries.
    pub fn confidence_interval(&self, agg: AggIdx, z: f64) -> Option<(f64, f64)> {
        let bucket = self.bucket(agg as usize);
        let values = &bucket.values;
        if values.len() < 2 {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let se = (var / n).sqrt();
        Some((mean - z * se, mean + z * se))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;

    use crate::exact::evaluate;
    use crate::query::Query;

    fn salary_setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    /// Ingest the whole table from `n_workers` scanners sharing one
    /// morsel pool.
    fn parallel_fill(
        table: &voxolap_data::Table,
        q: &Query,
        n_workers: usize,
        seed: u64,
    ) -> ShardedSampleCache {
        let cache = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let pool = table.morsel_pool(seed);
        std::thread::scope(|scope| {
            for _ in 0..n_workers {
                let cache = &cache;
                let pool = pool.clone();
                scope.spawn(move || {
                    let mut scan =
                        table.scan_pooled(pool, voxolap_data::schema::MeasureId::PRIMARY);
                    while let Some(r) = scan.next_row() {
                        cache.observe(q.layout().agg_of_row(r.members), r.value);
                    }
                });
            }
        });
        cache
    }

    #[test]
    fn parallel_ingest_counts_are_exact() {
        let (table, q) = salary_setup();
        let cache = parallel_fill(&table, &q, 4, 7);
        assert_eq!(cache.nr_read(), table.row_count() as u64);
        let total: usize = (0..q.n_aggregates() as u32).map(|a| cache.size(a)).sum();
        assert_eq!(total, table.row_count(), "no row lost across workers");
        let exact = evaluate(&q, &table);
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(cache.seen(agg), exact.count(agg), "aggregate {agg}");
        }
    }

    #[test]
    fn merged_estimates_match_exact_after_full_ingest() {
        let (table, q) = salary_setup();
        let cache = parallel_fill(&table, &q, 4, 3);
        let exact = evaluate(&q, &table);
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = ResampleScratch::new();
        for agg in 0..q.n_aggregates() as u32 {
            let est = cache.estimate_with(agg, &mut rng, &mut scratch).unwrap();
            assert!((est.count - exact.count(agg) as f64).abs() < 1e-6);
            assert!((est.avg - exact.value(agg)).abs() < 15.0, "resample mean in range");
        }
        // Scope-wide mean is exact with the whole table cached.
        let overall = cache.overall_estimate(AggFct::Avg).unwrap();
        let exact_mean: f64 = table.measure().iter().sum::<f64>() / table.row_count() as f64;
        assert!((overall - exact_mean).abs() < 1e-9);
    }

    #[test]
    fn pick_aggregate_covers_all_nonempty() {
        let (table, q) = salary_setup();
        let cache = parallel_fill(&table, &q, 3, 5);
        assert_eq!(cache.nonempty_count(), q.n_aggregates(), "salary scope covers all");
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = vec![false; q.n_aggregates()];
        for _ in 0..4000 {
            hits[cache.pick_aggregate(AggFct::Avg, &mut rng).unwrap() as usize] = true;
        }
        assert!(hits.iter().all(|&h| h), "every aggregate reachable");
    }

    #[test]
    fn bucket_capacity_bounds_memory_under_concurrency() {
        let (table, q) = salary_setup();
        let cache = {
            let cache = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64)
                .with_bucket_capacity(8);
            let pool = table.morsel_pool(11);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let cache = &cache;
                    let table = &table;
                    let q = &q;
                    let pool = pool.clone();
                    scope.spawn(move || {
                        let mut scan =
                            table.scan_pooled(pool, voxolap_data::schema::MeasureId::PRIMARY);
                        while let Some(r) = scan.next_row() {
                            cache.observe(q.layout().agg_of_row(r.members), r.value);
                        }
                    });
                }
            });
            cache
        };
        for agg in 0..q.n_aggregates() as u32 {
            assert!(cache.size(agg) <= 8, "bucket {agg} capped");
            assert!(cache.seen(agg) as usize >= cache.size(agg));
        }
        let offered: u64 = (0..q.n_aggregates() as u32).map(|a| cache.seen(a)).sum();
        assert_eq!(offered, table.row_count() as u64, "offered counts survive eviction");
    }

    #[test]
    fn seeded_sharded_cache_matches_cold_ingest() {
        let (table, q) = salary_setup();
        // Donor pass: single-shard scan prefix, logging in-scope rows.
        let prefix = 120usize;
        let mut log: Vec<(Vec<MemberId>, f64)> = Vec::new();
        let mut scan = table.scan_shuffled(7);
        for _ in 0..prefix {
            let r = scan.next_row().unwrap();
            if q.layout().agg_of_row(r.members).is_some() {
                log.push((r.members.to_vec(), r.value));
            }
        }
        let warm = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64);
        warm.seed_rows(q.layout(), log.iter().map(|(m, v)| (m.as_slice(), *v)), prefix as u64);
        // Cold pass over the same prefix.
        let cold = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let mut scan = table.scan_shuffled(7);
        for _ in 0..prefix {
            let r = scan.next_row().unwrap();
            cold.observe(q.layout().agg_of_row(r.members), r.value);
        }
        assert_eq!(warm.nr_read(), cold.nr_read());
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(warm.size(agg), cold.size(agg));
            assert_eq!(warm.seen(agg), cold.seen(agg));
        }
    }

    #[test]
    fn exact_result_after_full_parallel_ingest() {
        let (table, q) = salary_setup();
        let partial = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64);
        assert!(partial.exact_result().is_none());
        let cache = parallel_fill(&table, &q, 4, 7);
        let (counts, sums) = cache.exact_result().expect("full ingest is exact");
        let exact = evaluate(&q, &table);
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(counts[agg as usize], exact.count(agg));
            assert!((sums[agg as usize] - exact.sum(agg)).abs() < 1e-6);
        }
    }

    #[test]
    fn injected_tears_rebuild_buckets_and_void_exactness() {
        use voxolap_faults::{FaultPlan, SiteSchedule};
        let (table, q) = salary_setup();
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::new(77).with_site(FaultSite::CacheShard, SiteSchedule::error(0.05)),
        ));
        let stats = Arc::new(DegradeStats::default());
        let cache = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64)
            .with_faults(injector.clone(), stats.clone());
        let pool = table.morsel_pool(7);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                let table = &table;
                let q = &q;
                let pool = pool.clone();
                scope.spawn(move || {
                    let mut scan =
                        table.scan_pooled(pool, voxolap_data::schema::MeasureId::PRIMARY);
                    while let Some(r) = scan.next_row() {
                        cache.observe(q.layout().agg_of_row(r.members), r.value);
                    }
                });
            }
        });
        assert!(injector.injected(FaultSite::CacheShard) > 0, "faults actually fired");
        assert!(cache.poison_recoveries() > 0, "torn buckets were rebuilt");
        assert_eq!(
            stats.snapshot().poison_recoveries,
            cache.poison_recoveries(),
            "recoveries mirrored into shared stats"
        );
        // Full scan, but values were lost: the cache must not claim
        // exactness...
        assert!(cache.exact_result().is_none(), "recovered cache never claims exactness");
        assert_eq!(cache.nr_read(), table.row_count() as u64);
        // ...while the atomic offered counts stay exact (like eviction).
        let exact = evaluate(&q, &table);
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(cache.seen(agg), exact.count(agg), "offered counts survive tears");
        }
        // Estimators keep functioning on the surviving values.
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = ResampleScratch::new();
        for agg in 0..q.n_aggregates() as u32 {
            assert!(cache.estimate_with(agg, &mut rng, &mut scratch).is_some());
        }
    }

    #[test]
    fn zero_probability_faults_change_nothing() {
        use voxolap_faults::{FaultPlan, SiteSchedule};
        let (table, q) = salary_setup();
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::new(1).with_site(FaultSite::CacheShard, SiteSchedule::error(0.0)),
        ));
        let stats = Arc::new(DegradeStats::default());
        let faulted = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64)
            .with_faults(injector, stats);
        let plain = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let mut scan = table.scan_shuffled(7);
        while let Some(r) = scan.next_row() {
            let agg = q.layout().agg_of_row(r.members);
            faulted.observe(agg, r.value);
        }
        let mut scan = table.scan_shuffled(7);
        while let Some(r) = scan.next_row() {
            plain.observe(q.layout().agg_of_row(r.members), r.value);
        }
        assert_eq!(faulted.poison_recoveries(), 0);
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(faulted.size(agg), plain.size(agg));
            assert_eq!(faulted.seen(agg), plain.seen(agg));
        }
        assert_eq!(faulted.exact_result(), plain.exact_result());
    }

    /// Full bucket contents in insertion order: with a resample size at
    /// least the bucket length, `resample_into` copies the bucket verbatim
    /// without consuming the resample RNG.
    fn bucket_contents(cache: &ShardedSampleCache, agg: AggIdx) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = ResampleScratch::new();
        cache.resample_into(agg, &mut rng, &mut scratch).to_vec()
    }

    /// Ingest the whole shuffled table row-at-a-time into one cache and in
    /// batches of `batch_rows` (accumulated via [`IngestBatch`]) into the
    /// other, then assert every observable — bucket contents (including
    /// reservoir-evicted state), offered counts, nr_read, scope
    /// aggregates, estimates — is identical.
    fn assert_batch_matches_row_at_a_time(
        table: &voxolap_data::Table,
        q: &Query,
        seed: u64,
        batch_rows: usize,
        capacity: Option<usize>,
    ) {
        let mk = || {
            let c = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64)
                .with_resample_size(100_000);
            match capacity {
                Some(cap) => c.with_bucket_capacity(cap),
                None => c,
            }
        };
        let by_row = mk();
        let mut scan = table.scan_shuffled(seed);
        while let Some(r) = scan.next_row() {
            by_row.observe(q.layout().agg_of_row(r.members), r.value);
        }

        let by_batch = mk();
        let mut scan = table.scan_shuffled(seed);
        let mut batch = IngestBatch::new(q.n_aggregates());
        let mut aggs = Vec::new();
        while let Some(b) = scan.next_block(batch_rows) {
            q.layout().agg_of_block(b.dims, b.rows, &mut aggs);
            for (i, &r) in b.rows.iter().enumerate() {
                batch.push_resolved(aggs[i], b.values[r as usize]);
            }
            by_batch.observe_batch(&mut batch);
            assert!(batch.is_empty(), "commit drains the batch");
        }

        assert_eq!(by_batch.nr_read(), by_row.nr_read());
        assert_eq!(by_batch.nonempty_count(), by_row.nonempty_count());
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(by_batch.seen(agg), by_row.seen(agg), "offered, agg {agg}");
            assert_eq!(
                bucket_contents(&by_batch, agg).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                bucket_contents(&by_row, agg).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "bucket contents, agg {agg} (cap {capacity:?}, batch {batch_rows})"
            );
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xabc);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0xabc);
            let mut s_a = ResampleScratch::new();
            let mut s_b = ResampleScratch::new();
            assert_eq!(
                by_batch.estimate_with(agg, &mut rng_a, &mut s_a),
                by_row.estimate_with(agg, &mut rng_b, &mut s_b),
                "estimates, agg {agg}"
            );
        }
        for fct in [AggFct::Avg, AggFct::Sum, AggFct::Count] {
            let (a, b) = (by_batch.overall_estimate(fct), by_row.overall_estimate(fct));
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "overall estimate bit-identical ({fct:?})"
            );
        }
        assert_eq!(by_batch.exact_result(), by_row.exact_result());
    }

    #[test]
    fn observe_batch_matches_row_at_a_time_over_seeds() {
        let (table, q) = salary_setup();
        for seed in [3u64, 7, 11, 19, 41] {
            // Batch sizes below, at, and above typical bucket traffic.
            for batch_rows in [1usize, 3, 17, 64, 1000] {
                assert_batch_matches_row_at_a_time(&table, &q, seed, batch_rows, None);
            }
        }
    }

    #[test]
    fn observe_batch_matches_row_at_a_time_past_reservoir_capacity() {
        // Capacity 8 on a 320-row table forces reservoir evictions inside
        // the batch loop; bucket contents stay bit-identical because each
        // bucket's private RNG sees the same offer sequence either way.
        let (table, q) = salary_setup();
        for seed in [5u64, 13, 29] {
            for batch_rows in [7usize, 64, 320] {
                assert_batch_matches_row_at_a_time(&table, &q, seed, batch_rows, Some(8));
            }
        }
    }

    #[test]
    fn observe_batch_respects_filtered_out_rows() {
        // A filtered flights query: out-of-scope rows count toward nr_read
        // but never touch buckets or scope aggregates.
        let table = voxolap_data::flights::FlightsConfig::small().generate();
        let schema = table.schema();
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(0), ne)
            .group_by(DimId(1), LevelId(1))
            .build(schema)
            .unwrap();
        assert_batch_matches_row_at_a_time(&table, &q, 23, 113, None);
    }

    #[test]
    fn injected_tears_fire_and_recover_inside_observe_batch() {
        use voxolap_faults::{FaultPlan, SiteSchedule};
        let (table, q) = salary_setup();
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::new(99).with_site(FaultSite::CacheShard, SiteSchedule::error(0.5)),
        ));
        let stats = Arc::new(DegradeStats::default());
        let cache = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64)
            .with_faults(injector.clone(), stats.clone());
        let pool = table.morsel_pool(7);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                let table = &table;
                let q = &q;
                let pool = pool.clone();
                scope.spawn(move || {
                    let mut scan =
                        table.scan_pooled(pool, voxolap_data::schema::MeasureId::PRIMARY);
                    let mut batch = IngestBatch::new(q.n_aggregates());
                    let mut aggs = Vec::new();
                    while let Some(b) = scan.next_block(usize::MAX) {
                        q.layout().agg_of_block(b.dims, b.rows, &mut aggs);
                        for (i, &r) in b.rows.iter().enumerate() {
                            batch.push_resolved(aggs[i], b.values[r as usize]);
                        }
                        cache.observe_batch(&mut batch);
                    }
                });
            }
        });
        assert!(injector.injected(FaultSite::CacheShard) > 0, "tear site fires in batch path");
        assert!(cache.poison_recoveries() > 0, "torn buckets rebuilt");
        assert_eq!(stats.snapshot().poison_recoveries, cache.poison_recoveries());
        assert!(cache.exact_result().is_none(), "recovered cache never claims exactness");
        assert_eq!(cache.nr_read(), table.row_count() as u64);
        // Offered counts stay exact through tears (same as eviction).
        let exact = evaluate(&q, &table);
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(cache.seen(agg), exact.count(agg), "offered counts survive tears");
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = ResampleScratch::new();
        for agg in 0..q.n_aggregates() as u32 {
            assert!(cache.estimate_with(agg, &mut rng, &mut scratch).is_some());
        }
    }

    #[test]
    fn parallel_batched_ingest_counts_are_exact() {
        let (table, q) = salary_setup();
        let cache = ShardedSampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let pool = table.morsel_pool(7);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                let table = &table;
                let q = &q;
                let pool = pool.clone();
                scope.spawn(move || {
                    let mut scan =
                        table.scan_pooled(pool, voxolap_data::schema::MeasureId::PRIMARY);
                    let mut batch = IngestBatch::new(q.n_aggregates());
                    let mut aggs = Vec::new();
                    while let Some(b) = scan.next_block(usize::MAX) {
                        q.layout().agg_of_block(b.dims, b.rows, &mut aggs);
                        for (i, &r) in b.rows.iter().enumerate() {
                            batch.push_resolved(aggs[i], b.values[r as usize]);
                        }
                        cache.observe_batch(&mut batch);
                    }
                });
            }
        });
        assert_eq!(cache.nr_read(), table.row_count() as u64);
        let (counts, sums) = cache.exact_result().expect("full batched ingest is exact");
        let exact = evaluate(&q, &table);
        for agg in 0..q.n_aggregates() as u32 {
            assert_eq!(counts[agg as usize], exact.count(agg));
            assert!((sums[agg as usize] - exact.sum(agg)).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_cache_behaves_like_sequential() {
        let cache = ShardedSampleCache::new(4, 100);
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = ResampleScratch::new();
        assert_eq!(cache.estimate_with(0, &mut rng, &mut scratch), None);
        assert_eq!(cache.overall_estimate(AggFct::Avg), None);
        assert_eq!(cache.pick_aggregate(AggFct::Avg, &mut rng), None);
        assert!(cache.pick_aggregate(AggFct::Count, &mut rng).is_some());
        assert_eq!(cache.confidence_interval(0, 1.96), None);
    }
}
