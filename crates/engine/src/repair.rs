//! Sample-snapshot repair after appends (DESIGN.md §16).
//!
//! A [`SampleSnapshot`] drawn against table version `v` is a uniform scan
//! prefix of that version's rows. When the table grows to version `v' > v`
//! (one or more append batches), the snapshot is not discarded: because
//! segmented scan orders keep the old-prefix permutation stable and give
//! the appended suffix its own seeded sub-order, the snapshot can be
//! *repaired* by scanning only the suffix.
//!
//! **Proportional suffix read.** The donor read `k0` of the old `N0` rows —
//! inclusion rate `k0/N0`. Repair reads the first
//! `k1 = round(N1 · k0 / N0)` rows of the suffix's seeded sub-order
//! (`N1` = appended rows), so every row of the grown table — old or new —
//! is included with (approximately) the same rate, and the merged prefix of
//! `k0 + k1` rows stays a uniform sample of all `N0 + N1` rows. The
//! `e = N · seen/read` estimators of paper Algorithm 3 remain unbiased
//! with `N` and `read` both updated. An exhausted donor (`k0 = N0`) reads
//! the whole suffix and is exact again.
//!
//! Repair cost is `O(k1) ≤ O(N1)` rows — it never rescans the old prefix.
//! The morsel pool is resumed with the donor's coverage marked consumed,
//! so claims start directly at suffix positions.

use std::sync::Arc;

use voxolap_data::chunk::MorselPool;
use voxolap_data::schema::Schema;
use voxolap_data::Table;

use crate::query::ScopeKey;
use crate::semantic::{LoggedRow, SampleSnapshot};

/// A repaired snapshot plus the suffix rows the repair scanned (its cost,
/// reported to cache counters and bench output).
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The snapshot re-stamped to the live version, with suffix rows
    /// merged into the row log and progress vector.
    pub snapshot: SampleSnapshot,
    /// Suffix rows actually read (`≤` appended rows).
    pub rows_read: u64,
}

/// `true` iff a row (leaf member per dimension) lies in the scope: under
/// every filter member of the scope key. Matches the engines' row-log
/// admission rule (`agg_of_row(..).is_some()`), but works against the
/// *live* schema, so rows carrying dictionary members created after the
/// donor's layout was built are classified safely (no layout table sized
/// for the old member count is indexed).
fn in_scope(schema: &Schema, scope: &ScopeKey, members: &[voxolap_data::MemberId]) -> bool {
    scope.filters().iter().all(|&(dim, filter)| {
        schema.dimension(dim).is_ancestor_or_self(filter, members[dim.index()])
    })
}

/// Repair a version-stale snapshot against the live table by scanning only
/// the appended suffix (see module docs). Returns `None` when the snapshot
/// needs no repair (same version) or cannot be repaired cheaply (its table
/// was empty, or its row count is not a segment boundary of the live
/// order — e.g. a snapshot that somehow outlived a non-append change);
/// callers fall back to a cold scan in that case.
pub fn repair_snapshot(
    donor: &SampleSnapshot,
    table: &Table,
    scope: &ScopeKey,
) -> Option<RepairOutcome> {
    let n_total = table.row_count() as u64;
    let n0 = donor.table_rows;
    if donor.version == table.version() || n0 == 0 || n0 > n_total {
        return None;
    }
    // Appends always land as whole segments, so the donor's row count must
    // be a prefix of the live segment list.
    let mut acc = 0u64;
    let boundary = table.segments().iter().any(|&s| {
        acc += s as u64;
        acc == n0
    });
    if !boundary && n0 != n_total {
        return None;
    }

    let n1 = n_total - n0;
    let k0 = donor.nr_read;
    let k1 = (((n1 as f64) * (k0 as f64) / (n0 as f64)).round() as u64).min(n1);

    let order = table.scan_order(donor.seed);
    let prefix = order.prefix_positions(n0 as usize);
    let pool = Arc::new(MorselPool::new(order));
    // Mark the donor's whole coverage consumed: claims skip straight to
    // the suffix sub-order, so repair reads no old row.
    let consumed: Vec<u32> = (0..prefix).map(|p| pool.order().chunk_len(p)).collect();

    let mut rows = donor.rows.clone();
    let mut read = 0u64;
    {
        let mut scan = table.scan_pooled(Arc::clone(&pool), scope.measure());
        scan.resume(&consumed);
        while read < k1 {
            let Some(row) = scan.next_row() else { break };
            read += 1;
            if in_scope(table.schema(), scope, row.members) {
                rows.push(LoggedRow { members: row.members.into(), value: row.value });
            }
        }
    }

    // Suffix watermarks come from the pool; the old-prefix positions are
    // restored to the donor's *actual* progress (the control vector marked
    // them fully consumed only to steer claims).
    let mut progress = pool.progress_vec();
    if progress.len() < prefix {
        progress.resize(prefix, 0);
    }
    for (slot, donor_done) in progress.iter_mut().zip(&donor.progress) {
        *slot = *donor_done;
    }
    for slot in progress.iter_mut().take(prefix).skip(donor.progress.len()) {
        *slot = 0;
    }
    while progress.last() == Some(&0) {
        progress.pop();
    }

    Some(RepairOutcome {
        snapshot: SampleSnapshot {
            seed: donor.seed,
            progress,
            nr_read: k0 + read,
            rows,
            version: table.version(),
            table_rows: n_total,
        },
        rows_read: read,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::table::{DimValue, IngestRow};
    use voxolap_data::DimId;

    use crate::query::{AggFct, Query};

    /// A deterministic one-dimension table: `n` rows, value = row index.
    fn base_table(n: usize) -> Table {
        use voxolap_data::dimension::DimensionBuilder;
        use voxolap_data::schema::MeasureUnit;
        use voxolap_data::table::TableBuilder;
        let mut b = DimensionBuilder::new("region", "in", "anywhere");
        let l = b.add_level("region");
        let a = b.add_member(l, b.root(), "alpha");
        let z = b.add_member(l, b.root(), "zeta");
        let schema = voxolap_data::Schema::new("t", vec![b.build()], "value", MeasureUnit::Plain);
        let mut tb = TableBuilder::new(schema);
        for i in 0..n {
            let m = if i % 3 == 0 { a } else { z };
            tb.push_row(&[m], i as f64).unwrap();
        }
        tb.build()
    }

    fn suffix_rows(n: usize, start: usize) -> Vec<IngestRow> {
        (0..n)
            .map(|i| IngestRow {
                dims: vec![DimValue::Phrase(
                    if (start + i).is_multiple_of(3) { "alpha" } else { "zeta" }.into(),
                )],
                values: vec![(start + i) as f64],
            })
            .collect()
    }

    /// Draw a donor snapshot: scan `k0` rows of `table` under `seed`,
    /// logging in-scope rows for `scope`.
    fn draw_snapshot(table: &Table, scope: &ScopeKey, seed: u64, k0: usize) -> SampleSnapshot {
        let mut scan = table.scan_shuffled_measure(seed, scope.measure());
        let mut rows = Vec::new();
        for _ in 0..k0 {
            let r = scan.next_row().expect("table has k0 rows");
            if in_scope(table.schema(), scope, r.members) {
                rows.push(LoggedRow { members: r.members.into(), value: r.value });
            }
        }
        SampleSnapshot {
            seed,
            progress: scan.progress(),
            nr_read: k0 as u64,
            rows,
            version: table.version(),
            table_rows: table.row_count() as u64,
        }
    }

    fn unfiltered_scope(table: &Table) -> ScopeKey {
        Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap()
            .key()
            .scope()
    }

    #[test]
    fn repair_reads_only_a_proportional_suffix_prefix() {
        let old = base_table(3_000);
        let scope = unfiltered_scope(&old);
        let donor = draw_snapshot(&old, &scope, 17, 900); // rate 0.3
        let (new, _) = old.append_rows(&suffix_rows(600, 3_000)).unwrap();
        let out = repair_snapshot(&donor, &new, &scope).expect("repairable");
        assert_eq!(out.rows_read, 180, "round(600 * 900/3000)");
        assert_eq!(out.snapshot.nr_read, 900 + 180);
        assert_eq!(out.snapshot.version, 1);
        assert_eq!(out.snapshot.table_rows, 3_600);
        // The repaired log extends the donor's (nothing dropped, suffix
        // in-scope rows appended).
        assert!(out.snapshot.rows.len() >= donor.rows.len());
        assert_eq!(out.snapshot.rows[..donor.rows.len()].len(), donor.rows.len());
    }

    #[test]
    fn repaired_snapshot_matches_a_fresh_scan_of_the_same_depth() {
        // Resuming the repaired progress and reading the remaining rows
        // must visit each remaining row exactly once — i.e. the repaired
        // consumed-set is a valid scan state of the grown table.
        let old = base_table(500);
        let scope = unfiltered_scope(&old);
        let donor = draw_snapshot(&old, &scope, 5, 200);
        let (new, _) = old.append_rows(&suffix_rows(250, 500)).unwrap();
        let out = repair_snapshot(&donor, &new, &scope).expect("repairable");

        let mut resumed = new.scan_shuffled_measure(5, scope.measure());
        resumed.resume(&out.snapshot.progress);
        let mut remaining = Vec::new();
        while let Some(r) = resumed.next_row() {
            remaining.push(r.value);
        }
        assert_eq!(
            remaining.len() as u64,
            new.row_count() as u64 - out.snapshot.nr_read,
            "repaired progress + remainder covers the table exactly"
        );
        // Consumed (logged, unfiltered scope = all read rows) and the
        // remainder partition all row values.
        let mut all: Vec<f64> = out.snapshot.rows.iter().map(|r| r.value).collect();
        all.extend(&remaining);
        all.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..new.row_count()).map(|i| i as f64).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn exhausted_donor_repairs_to_exact_again() {
        let old = base_table(400);
        let scope = unfiltered_scope(&old);
        let donor = draw_snapshot(&old, &scope, 9, 400);
        let (new, _) = old.append_rows(&suffix_rows(100, 400)).unwrap();
        let out = repair_snapshot(&donor, &new, &scope).expect("repairable");
        assert_eq!(out.rows_read, 100, "whole suffix");
        assert_eq!(out.snapshot.nr_read, 500, "exact over the grown table");
    }

    #[test]
    fn same_version_needs_no_repair() {
        let t = base_table(100);
        let scope = unfiltered_scope(&t);
        let donor = draw_snapshot(&t, &scope, 3, 40);
        assert!(repair_snapshot(&donor, &t, &scope).is_none());
    }

    #[test]
    fn filtered_scope_logs_only_matching_suffix_rows() {
        let old = base_table(900);
        let schema = old.schema();
        let alpha = schema.dimension(DimId(0)).member_by_phrase("alpha").unwrap();
        let scope = Query::builder(AggFct::Avg)
            .filter(DimId(0), alpha)
            .build(schema)
            .unwrap()
            .key()
            .scope();
        let donor = draw_snapshot(&old, &scope, 11, 300);
        let (new, _) = old.append_rows(&suffix_rows(300, 900)).unwrap();
        let out = repair_snapshot(&donor, &new, &scope).expect("repairable");
        let d = new.schema().dimension(DimId(0));
        for row in &out.snapshot.rows {
            assert!(d.is_ancestor_or_self(alpha, row.members[0]), "out-of-scope row logged");
        }
        assert!(out.snapshot.rows.len() > donor.rows.len(), "suffix alphas were found");
    }
}
