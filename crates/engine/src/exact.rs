//! Exact query evaluation by full scan.
//!
//! Used by the *Optimal* planner variant (which "samples neither from the
//! data nor in the plan space", paper §5.1) and by exact speech-quality
//! measurement over the entire data set.

use voxolap_data::Table;

use crate::query::{AggFct, AggIdx, Query};

/// Exact result of a query: per-aggregate count, sum, and value.
#[derive(Debug, Clone)]
pub struct ExactResult {
    fct: AggFct,
    counts: Vec<u64>,
    sums: Vec<f64>,
}

impl ExactResult {
    /// Reassemble an exact result from per-aggregate counts and sums, e.g.
    /// ones admitted to the semantic cache by an earlier evaluation.
    pub fn from_parts(fct: AggFct, counts: Vec<u64>, sums: Vec<f64>) -> Self {
        assert_eq!(counts.len(), sums.len(), "counts/sums length mismatch");
        ExactResult { fct, counts, sums }
    }

    /// Per-aggregate scope row counts, in layout order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-aggregate measure sums, in layout order.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Number of result aggregates.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if the query had no aggregates (cannot happen for valid
    /// queries, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Row count of one aggregate's scope.
    pub fn count(&self, agg: AggIdx) -> u64 {
        self.counts[agg as usize]
    }

    /// Measure sum over one aggregate's scope.
    pub fn sum(&self, agg: AggIdx) -> f64 {
        self.sums[agg as usize]
    }

    /// The aggregate value under the query's aggregation function.
    ///
    /// For `AVG` of an empty scope this returns `NaN` (no rows — the paper's
    /// model leaves such aggregates undefined; quality computations skip
    /// them).
    pub fn value(&self, agg: AggIdx) -> f64 {
        match self.fct {
            AggFct::Count => self.counts[agg as usize] as f64,
            AggFct::Sum => self.sums[agg as usize],
            AggFct::Avg => self.sums[agg as usize] / self.counts[agg as usize] as f64,
        }
    }

    /// All aggregate values in layout order (see [`ExactResult::value`]).
    pub fn values(&self) -> Vec<f64> {
        (0..self.counts.len() as u32).map(|a| self.value(a)).collect()
    }

    /// Mean aggregate value over aggregates with non-empty scopes — the
    /// "typical value" a baseline statement should announce.
    pub fn grand_mean(&self) -> f64 {
        let vals: Vec<f64> = (0..self.counts.len() as u32)
            .filter(|&a| self.counts[a as usize] > 0 || self.fct != AggFct::Avg)
            .map(|a| self.value(a))
            .collect();
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Evaluate `query` exactly against `table` with a single full scan.
pub fn evaluate(query: &Query, table: &Table) -> ExactResult {
    let layout = query.layout();
    let n = layout.n_aggregates();
    let mut counts = vec![0u64; n];
    let mut sums = vec![0.0f64; n];
    let n_dims = table.schema().dimensions().len();
    let mut members = vec![voxolap_data::MemberId::ROOT; n_dims];
    for row in 0..table.row_count() {
        for (d, slot) in members.iter_mut().enumerate() {
            *slot = table.member_at(voxolap_data::DimId(d as u8), row);
        }
        if let Some(agg) = layout.agg_of_row(&members) {
            counts[agg as usize] += 1;
            sums[agg as usize] += table.measure_value(query.measure(), row);
        }
    }
    ExactResult { fct: query.fct(), counts, sums }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::{FlightsConfig, TABLE12};
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;

    #[test]
    fn counts_sum_to_scope_size() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let r = evaluate(&q, &table);
        let total: u64 = (0..r.len() as u32).map(|a| r.count(a)).sum();
        assert_eq!(total, 320);
    }

    #[test]
    fn count_query_values_are_counts() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Count)
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let r = evaluate(&q, &table);
        assert_eq!(r.values().iter().sum::<f64>(), 320.0);
    }

    #[test]
    fn sum_equals_avg_times_count() {
        let table = SalaryConfig::paper_scale().generate();
        let avg_q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let r = evaluate(&avg_q, &table);
        for a in 0..r.len() as u32 {
            assert!((r.value(a) * r.count(a) as f64 - r.sum(a)).abs() < 1e-6);
        }
    }

    #[test]
    fn filter_excludes_out_of_scope_rows() {
        let table = SalaryConfig::paper_scale().generate();
        let college = table.schema().dimension(DimId(0));
        let ne = college.member_by_phrase("the North East").unwrap();
        let q = Query::builder(AggFct::Count).filter(DimId(0), ne).build(table.schema()).unwrap();
        let r = evaluate(&q, &table);
        assert_eq!(r.len(), 1);
        assert!(r.value(0) > 0.0 && r.value(0) < 320.0);
    }

    #[test]
    fn region_season_result_tracks_generator_calibration() {
        let table = FlightsConfig { rows: 150_000, seed: 42 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let r = evaluate(&q, &table);
        assert_eq!(r.len(), 20);
        // Winter North East is cell (0,0): highest probability in Table 12.
        let ne_winter = r.value(0);
        assert!(
            (ne_winter - TABLE12[0][0]).abs() < 0.02,
            "NE winter {ne_winter} vs {}",
            TABLE12[0][0]
        );
        let max = r.values().iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(ne_winter, max, "NE winter is the worst cell");
    }

    #[test]
    fn grand_mean_averages_aggregates() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let r = evaluate(&q, &table);
        let gm = r.grand_mean();
        let manual: f64 = r.values().iter().sum::<f64>() / r.len() as f64;
        assert!((gm - manual).abs() < 1e-9);
        assert!(gm > 70.0 && gm < 110.0);
    }

    #[test]
    fn empty_avg_scope_yields_nan() {
        // Group flights by airport: some generated airports may get no
        // rows at tiny scale, producing NaN averages that downstream
        // quality code must skip.
        let table = FlightsConfig { rows: 50, seed: 1 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(4))
            .build(table.schema())
            .unwrap();
        let r = evaluate(&q, &table);
        assert!(r.values().iter().any(|v| v.is_nan()), "tiny scale leaves empty airports");
    }
}
