//! Minimal HTTP/1.1 server over `std::net`.
//!
//! Enough protocol for a JSON API: request line, headers,
//! `Content-Length` bodies, one response per connection
//! (`Connection: close`). No TLS, no chunked encoding, no keep-alive —
//! this mirrors the paper's simple JEE servlet backend, not a production
//! web server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Upper bound on accepted request bodies (64 KiB — questions are short).
const MAX_BODY: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (without query string).
    pub path: String,
    /// Request body (empty for bodyless methods).
    pub body: Vec<u8>,
}

/// An HTTP response to send.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON).
    pub body: String,
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn ok(body: String) -> Self {
        Response { status: 200, body }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Response { status, body: format!("{{\"error\":{}}}", voxolap_json::escape(message)) }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            _ => "Internal Server Error",
        }
    }
}

/// Read and parse one request from a stream.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let path = target.split('?').next().unwrap_or(target).to_string();
    let method = method.to_string();

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY {
        return Ok(Some(Request { method, path, body: vec![0; MAX_BODY + 1] }));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.status_text(),
        response.body.len(),
        response.body
    )
}

/// Handle to a running server: its bound address and a shutdown flag.
pub struct ServerHandle {
    /// The address the listener bound (useful with port 0).
    pub addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Signal the accept loop to stop and join its thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Start serving on `addr` (e.g. `"127.0.0.1:0"`), dispatching each
/// request to `handler` on a per-connection thread. Returns once the
/// listener is bound; the accept loop runs on a background thread until
/// [`ServerHandle::shutdown`].
pub fn serve<F>(addr: &str, handler: F) -> std::io::Result<ServerHandle>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handler = Arc::new(handler);
    let thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop_flag.load(Ordering::Relaxed) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let handler = handler.clone();
            std::thread::spawn(move || {
                let response = match read_request(&mut stream) {
                    Ok(Some(req)) if req.body.len() > MAX_BODY => {
                        Response::error(413, "request body too large")
                    }
                    Ok(Some(req)) => handler(&req),
                    Ok(None) => return,
                    Err(_) => Response::error(400, "malformed request"),
                };
                let _ = write_response(&mut stream, &response);
            });
        }
    });
    Ok(ServerHandle { addr: bound, stop, thread: Some(thread) })
}

#[cfg(test)]
mod tests {
    use super::*;
    fn start_echo() -> ServerHandle {
        serve("127.0.0.1:0", |req| {
            Response::ok(format!(
                "{{\"method\":{:?},\"path\":{:?},\"len\":{}}}",
                req.method,
                req.path,
                req.body.len()
            ))
        })
        .expect("bind")
    }

    fn raw_request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn parses_method_path_and_body() {
        let server = start_echo();
        let out = raw_request(
            server.addr,
            "POST /ask?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        );
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("\"method\":\"POST\""));
        assert!(out.contains("\"path\":\"/ask\""), "query string stripped: {out}");
        assert!(out.contains("\"len\":4"));
        server.shutdown();
    }

    #[test]
    fn bodyless_get() {
        let server = start_echo();
        let out = raw_request(server.addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.contains("\"path\":\"/health\""));
        assert!(out.contains("\"len\":0"));
        server.shutdown();
    }

    #[test]
    fn oversized_body_is_rejected() {
        let server = start_echo();
        let out = raw_request(
            server.addr,
            &format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 10),
        );
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = start_echo();
        let addr = server.addr;
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    raw_request(addr, &format!("GET /r{i} HTTP/1.1\r\n\r\n"))
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.join().unwrap();
            assert!(out.contains(&format!("/r{i}")));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = start_echo();
        let addr = server.addr;
        server.shutdown();
        // After shutdown the port refuses or resets; either way no 200.
        let result = TcpStream::connect(addr);
        if let Ok(mut s) = result {
            let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("200 OK"), "{out}");
        }
    }
}
