//! Evented HTTP/1.1 serving over `std::net` — a readiness-driven reactor
//! with a worker pool, built to hold huge fleets of mostly-idle voice
//! sessions (DESIGN.md §15).
//!
//! The previous serving layer (§10) was thread-per-connection behind a
//! bounded queue: correct under load, but one OS thread per in-flight
//! connection and `Connection: close` on every response. This layer keeps
//! the §10 guarantees (admission control, timeouts, panic isolation,
//! deadline-bounded graceful shutdown, metrics) on a different substrate:
//!
//! - **Reactor thread** — a nonblocking accept loop plus per-connection
//!   state machines (`ReadHead/ReadBody → dispatch → write/linger`)
//!   multiplexed over `epoll` ([`crate::reactor`]). Idle connections cost
//!   a couple hundred bytes of state, not a thread.
//! - **Worker pool** — parsed requests are executed on a small fixed pool
//!   fed by a bounded queue; when the queue is full the *reactor* answers
//!   `503` + `Retry-After` through its nonblocking write path, so slow or
//!   absent readers can never stall the accept path.
//! - **Keep-alive** — clients that send `Connection: keep-alive` get
//!   their connection parked back in the reactor after each response and
//!   reused for follow-up queries (semantic-cache warm starts then hit on
//!   a warm connection). Parse errors and serving-layer failures still
//!   close, with a deadline-bounded lingering close (FIN, not RST).
//! - **Session transport** — a handler can answer an HTTP request with
//!   [`Response::upgrade_session`]: the connection leaves HTTP framing
//!   (`101 Switching Protocols`, `Upgrade: voxolap-session`) and becomes
//!   a long-lived bidirectional NDJSON link. The client writes one JSON
//!   line per utterance; each line is dispatched to the worker pool,
//!   which streams reply events (one §11 `SpeechStream` per utterance)
//!   straight onto the socket. Parked sessions get server heartbeats and
//!   an idle reaper.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

use voxolap_engine::poison::RecoveringMutex;

use crate::reactor::{Event, Interest, Poller};

/// Upper bound on accepted request bodies (64 KiB — questions are short).
const MAX_BODY: usize = 64 * 1024;

/// Upper bound on the request line + header section.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Upper bound on one NDJSON line from an upgraded session connection.
const MAX_SESSION_LINE: usize = 64 * 1024;

/// Reactor tick: upper bound between deadline sweeps (heartbeats, idle
/// reaping, read timeouts) and the stop-flag recheck latency.
const TICK: Duration = Duration::from_millis(25);

/// How often idle workers recheck the stop flag while waiting for work.
const WORKER_POLL: Duration = Duration::from_millis(100);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (without query string).
    pub path: String,
    /// Request body (empty for bodyless methods).
    pub body: Vec<u8>,
    /// The client sent `Connection: keep-alive` and may reuse the
    /// connection for follow-up requests.
    pub keep_alive: bool,
}

impl Request {
    /// Build a request by hand (handler unit tests).
    pub fn new(method: &str, path: &str, body: &[u8]) -> Self {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_vec(),
            keep_alive: false,
        }
    }
}

/// A callback producing a chunked response body incrementally.
pub type StreamBody = Box<dyn FnOnce(&mut BodyWriter<'_>) + Send>;

/// What a session-line handler decides about the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionVerdict {
    /// Park the connection back in the reactor and await the next line.
    Continue,
    /// Close the session (the handler already wrote any farewell event).
    Close,
}

/// Per-line callback of an upgraded session connection: receives one
/// NDJSON line from the client and writes reply events through the sink.
pub type SessionCallback = Arc<dyn Fn(&str, &mut SessionSink<'_>) -> SessionVerdict + Send + Sync>;

/// Everything the serving layer needs to run a long-lived session
/// connection after the HTTP upgrade (see [`Response::upgrade_session`]).
pub struct SessionUpgrade {
    /// Session identifier (for close notifications and logs).
    pub id: String,
    /// Greeting event(s) written right after the `101` handshake, before
    /// the connection parks (e.g. a `hello` line carrying negotiated
    /// heartbeat and idle-timeout values).
    pub hello: Option<String>,
    /// Invoked on the worker pool for every complete line the client
    /// sends.
    pub on_line: SessionCallback,
    /// Invoked exactly once when the session connection closes for any
    /// reason (client hangup, idle reap, shutdown, handler verdict).
    pub on_close: Arc<dyn Fn(&str) + Send + Sync>,
}

/// An HTTP response to send.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON). Ignored when `stream` is set.
    pub body: String,
    /// When set, the response is sent `Transfer-Encoding: chunked` and
    /// this callback writes the body through a [`BodyWriter`], one chunk
    /// per call, flushed to the socket as it is produced.
    pub stream: Option<StreamBody>,
    /// When set, the response is a `101 Switching Protocols` handshake
    /// and the connection becomes a long-lived NDJSON session.
    pub(crate) session: Option<SessionUpgrade>,
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Response")
            .field("status", &self.status)
            .field("body", &self.body)
            .field("streaming", &self.stream.is_some())
            .field("session", &self.session.as_ref().map(|s| s.id.clone()))
            .finish()
    }
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn ok(body: String) -> Self {
        Response { status: 200, body, stream: None, session: None }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            body: format!("{{\"error\":{}}}", voxolap_json::escape(message)),
            stream: None,
            session: None,
        }
    }

    /// A 200 response whose body is produced incrementally by `body` and
    /// delivered with chunked transfer encoding as it is written — used
    /// for NDJSON sentence streams.
    pub fn streaming(body: impl FnOnce(&mut BodyWriter<'_>) + Send + 'static) -> Self {
        Response { status: 200, body: String::new(), stream: Some(Box::new(body)), session: None }
    }

    /// A `101 Switching Protocols` response upgrading the connection to a
    /// long-lived NDJSON session (see [`SessionUpgrade`]).
    pub fn upgrade_session(upgrade: SessionUpgrade) -> Self {
        Response { status: 101, body: String::new(), stream: None, session: Some(upgrade) }
    }

    fn status_text(&self) -> &'static str {
        status_text(self.status)
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        101 => "Switching Protocols",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Incremental body writer handed to [`Response::streaming`] callbacks.
///
/// Each [`send`](BodyWriter::send) call becomes one HTTP chunk, flushed
/// immediately so the client sees every sentence the moment it is
/// planned. [`client_gone`](BodyWriter::client_gone) lets the producer
/// poll for a disconnected consumer and abort planning early.
pub struct BodyWriter<'a> {
    stream: &'a mut TcpStream,
    bytes_out: u64,
    failed: bool,
}

impl BodyWriter<'_> {
    /// Send one chunk (hex-length framed) and flush it to the socket.
    /// Returns `false` once the client is unreachable; subsequent sends
    /// are no-ops.
    pub fn send(&mut self, chunk: &str) -> bool {
        if self.failed || chunk.is_empty() {
            return !self.failed;
        }
        let framed = format!("{:x}\r\n{chunk}\r\n", chunk.len());
        match self.stream.write_all(framed.as_bytes()).and_then(|()| self.stream.flush()) {
            Ok(()) => {
                self.bytes_out += chunk.len() as u64;
                true
            }
            Err(_) => {
                self.failed = true;
                false
            }
        }
    }

    /// Whether the client has hung up. Clients of a streaming response
    /// send nothing after the request, so a readable EOF (or a reset)
    /// means the peer is gone; a would-block read means it is still
    /// listening. The check is a nonblocking 1-byte peek — cheap enough
    /// to poll between sentences.
    pub fn client_gone(&mut self) -> bool {
        self.failed |= peer_hung_up(self.stream);
        self.failed
    }
}

/// Nonblocking 1-byte peek: has the peer closed (EOF) or reset? Incoming
/// data and a would-block both mean the peer is still there.
fn peer_hung_up(stream: &mut TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Line writer handed to [`SessionCallback`]s on upgraded connections:
/// raw NDJSON, no chunk framing (the connection left HTTP at the `101`).
pub struct SessionSink<'a> {
    stream: &'a mut TcpStream,
    bytes_out: u64,
    failed: bool,
}

impl SessionSink<'_> {
    /// Write one event line (a trailing `\n` is appended) and flush.
    /// Returns `false` once the client is unreachable.
    pub fn send_line(&mut self, line: &str) -> bool {
        if self.failed {
            return false;
        }
        let framed = format!("{line}\n");
        match self.stream.write_all(framed.as_bytes()).and_then(|()| self.stream.flush()) {
            Ok(()) => {
                self.bytes_out += framed.len() as u64;
                true
            }
            Err(_) => {
                self.failed = true;
                false
            }
        }
    }

    /// Whether the peer has closed or reset the connection. Unlike the
    /// HTTP variant, pending readable bytes are expected here (the next
    /// utterance may already have arrived) and do not mean "gone".
    pub fn client_gone(&mut self) -> bool {
        self.failed |= peer_hung_up(self.stream);
        self.failed
    }
}

/// Send a chunked streaming response: status line + headers, then each
/// chunk as the handler produces it, then the terminal zero-length chunk.
/// Returns the body bytes successfully written and whether the response
/// completed (terminal chunk delivered) so the connection may be reused.
fn write_streaming(
    stream: &mut TcpStream,
    status: u16,
    status_text: &str,
    body: StreamBody,
    keep: bool,
) -> (u64, bool) {
    let conn = if keep { "keep-alive" } else { "close" };
    let header = format!(
        "HTTP/1.1 {status} {status_text}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: {conn}\r\n\r\n"
    );
    if stream.write_all(header.as_bytes()).and_then(|()| stream.flush()).is_err() {
        return (0, false);
    }
    let mut writer = BodyWriter { stream, bytes_out: 0, failed: false };
    body(&mut writer);
    let bytes = writer.bytes_out;
    let complete = !writer.failed && writer.stream.write_all(b"0\r\n\r\n").is_ok();
    (bytes, complete)
}

/// Serialize a plain (non-streaming) response with the given connection
/// disposition.
fn response_bytes(response: &Response, keep: bool) -> Vec<u8> {
    // Overloaded / shutting-down responses invite a quick retry.
    let retry = if response.status == 503 { "Retry-After: 1\r\n" } else { "" };
    let conn = if keep { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n{}\r\n{}",
        response.status,
        response.status_text(),
        response.body.len(),
        conn,
        retry,
        response.body
    )
    .into_bytes()
}

fn write_response(stream: &mut TcpStream, response: &Response, keep: bool) -> std::io::Result<()> {
    stream.write_all(&response_bytes(response, keep))
}

/// Tuning knobs for the serving layer (the server's `--http-*` flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed worker-pool size.
    pub threads: usize,
    /// Bounded queue capacity between the reactor and the workers;
    /// requests beyond it are answered `503` + `Retry-After`.
    pub queue: usize,
    /// A connection mid-request (bytes expected) that goes silent for
    /// this long gets a `408`.
    pub read_timeout: Duration,
    /// Per-write socket timeout while a worker owns the connection.
    pub write_timeout: Duration,
    /// Emit one structured log line per request to stderr.
    pub log_requests: bool,
    /// Honor `Connection: keep-alive` and park idle connections for
    /// reuse. When `false` every response closes (the §10 behaviour).
    pub keep_alive: bool,
    /// Parked keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Upgraded session connections idle longer than this are reaped
    /// (a `bye` event is sent best-effort first).
    pub session_idle_timeout: Duration,
    /// Interval between server heartbeat events on parked session
    /// connections.
    pub heartbeat: Duration,
    /// Hard cap on concurrently open connections; beyond it new sockets
    /// get a best-effort `503` and are closed immediately.
    pub max_connections: usize,
    /// Total time budget for writing a reactor-side error/rejection
    /// response *and* the lingering close that follows — slow readers
    /// are cut off at this deadline instead of stalling the reactor.
    pub reject_linger: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 8,
            queue: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            log_requests: false,
            keep_alive: true,
            idle_timeout: Duration::from_secs(30),
            session_idle_timeout: Duration::from_secs(120),
            heartbeat: Duration::from_secs(15),
            max_connections: 200_000,
            reject_linger: Duration::from_millis(500),
        }
    }
}

impl ServerConfig {
    /// Set both socket timeouts from one `--http-timeout-ms` value.
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout = Duration::from_millis(ms.max(1));
        self.write_timeout = self.read_timeout;
        self
    }
}

/// Monotonic serving-layer counters, shared between the server and
/// whoever renders `GET /stats`. All updates are relaxed atomics — the
/// counters are observability, not synchronization.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    /// Connections accepted and parked in the reactor.
    pub accepted: AtomicU64,
    /// Requests answered `503` (queue full, connection cap, shutdown).
    pub rejected: AtomicU64,
    /// Requests successfully parsed and dispatched to the handler.
    pub requests: AtomicU64,
    /// Responses by status class (1xx/2xx count together).
    pub responses_2xx: AtomicU64,
    /// 4xx responses (including parse rejections and timeouts).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (including panics and admission rejections).
    pub responses_5xx: AtomicU64,
    /// Connections answered `408` after a read deadline expired.
    pub timeouts: AtomicU64,
    /// Handler panics converted into `500`s (or session error events).
    pub panics: AtomicU64,
    /// Requests rejected at the parsing layer (`400`/`413`/`431`).
    pub parse_errors: AtomicU64,
    /// Connections dropped on unrecoverable I/O errors (no response sent).
    pub io_errors: AtomicU64,
    /// Rejection/error responses whose write failed or timed out before
    /// the client got the bytes (the connection was closed at the linger
    /// deadline).
    pub reject_write_failures: AtomicU64,
    /// Follow-up requests served on a reused keep-alive connection.
    pub keepalive_reuses: AtomicU64,
    /// Connections upgraded to long-lived NDJSON sessions.
    pub sessions_opened: AtomicU64,
    /// Session connections closed (any reason).
    pub sessions_closed: AtomicU64,
    /// NDJSON lines received from session clients.
    pub session_lines: AtomicU64,
    /// Heartbeat events written to parked sessions.
    pub heartbeats_sent: AtomicU64,
    /// Connections reaped by the idle sweeps (keep-alive + session).
    pub idle_closed: AtomicU64,
    /// Request body bytes read.
    pub bytes_in: AtomicU64,
    /// Response body bytes written.
    pub bytes_out: AtomicU64,
    /// Total time requests spent queued, in microseconds.
    pub queue_wait_us: AtomicU64,
    /// Total time spent handling + responding, in microseconds.
    pub handle_us: AtomicU64,
    /// Shared-state locks (job queue, return lane) found poisoned or torn
    /// and rebuilt by the next locker instead of crashing the pool.
    pub poison_recoveries: AtomicU64,
}

/// A plain-integer copy of [`HttpMetrics`] at one point in time.
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpMetricsSnapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub requests: u64,
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
    pub timeouts: u64,
    pub panics: u64,
    pub parse_errors: u64,
    pub io_errors: u64,
    pub reject_write_failures: u64,
    pub keepalive_reuses: u64,
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub session_lines: u64,
    pub heartbeats_sent: u64,
    pub idle_closed: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub queue_wait_us: u64,
    pub handle_us: u64,
    pub poison_recoveries: u64,
}

impl HttpMetrics {
    /// A fresh, shareable counter block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn count_status(&self, status: u16) {
        let class = match status {
            100..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        Self::add(class, 1);
    }

    /// Read every counter (relaxed; values are monotonic but mutually
    /// unsynchronized).
    pub fn snapshot(&self) -> HttpMetricsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        HttpMetricsSnapshot {
            accepted: get(&self.accepted),
            rejected: get(&self.rejected),
            requests: get(&self.requests),
            responses_2xx: get(&self.responses_2xx),
            responses_4xx: get(&self.responses_4xx),
            responses_5xx: get(&self.responses_5xx),
            timeouts: get(&self.timeouts),
            panics: get(&self.panics),
            parse_errors: get(&self.parse_errors),
            io_errors: get(&self.io_errors),
            reject_write_failures: get(&self.reject_write_failures),
            keepalive_reuses: get(&self.keepalive_reuses),
            sessions_opened: get(&self.sessions_opened),
            sessions_closed: get(&self.sessions_closed),
            session_lines: get(&self.session_lines),
            heartbeats_sent: get(&self.heartbeats_sent),
            idle_closed: get(&self.idle_closed),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            queue_wait_us: get(&self.queue_wait_us),
            handle_us: get(&self.handle_us),
            poison_recoveries: get(&self.poison_recoveries),
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental request parsing (reactor side).

/// Outcome of trying to parse one request from the accumulated bytes.
enum Parsed {
    /// Not enough bytes yet.
    NeedMore,
    /// One complete request; `consumed` bytes of the buffer were used.
    Request { req: Request, consumed: usize },
    /// Malformed request — answer `status` and close.
    Error { status: u16, message: &'static str },
}

/// Find the end of the header section (index just past the blank line).
fn head_end(buf: &[u8]) -> Option<usize> {
    // Tolerate both CRLF and bare-LF framing, like the old line reader.
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Incremental HTTP/1.1 request parser over the reactor's per-connection
/// buffer. Framing rules match the §10 parser: capped header section,
/// strict `Content-Length` validation, oversized bodies rejected without
/// being read.
fn parse_request(buf: &[u8]) -> Parsed {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Parsed::Error { status: 431, message: "headers too large" };
        }
        return Parsed::NeedMore;
    };
    if head_len > MAX_HEADER_BYTES {
        return Parsed::Error { status: 431, message: "headers too large" };
    }
    let head = String::from_utf8_lossy(&buf[..head_len]);
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Parsed::Error { status: 400, message: "malformed request line" };
    };
    let path = target.split('?').next().unwrap_or(target).to_string();
    let method = method.to_string();

    let mut content_length: Option<usize> = None;
    let mut keep_alive = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.trim().parse::<usize>() else {
                return Parsed::Error { status: 400, message: "invalid Content-Length" };
            };
            // Identical repeats are tolerated; conflicting values would
            // desynchronize body framing — reject them.
            if content_length.is_some_and(|prev| prev != n) {
                return Parsed::Error {
                    status: 400,
                    message: "conflicting Content-Length headers",
                };
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive |= value.to_ascii_lowercase().contains("keep-alive");
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Parsed::Error { status: 413, message: "request body too large" };
    }
    let total = head_len + content_length;
    if buf.len() < total {
        return Parsed::NeedMore;
    }
    let body = buf[head_len..total].to_vec();
    Parsed::Request { req: Request { method, path, body, keep_alive }, consumed: total }
}

// ---------------------------------------------------------------------------
// Reactor ↔ worker plumbing.

/// Context of an upgraded session connection, carried with the
/// connection as it bounces between reactor and workers.
#[derive(Clone)]
struct SessionCtx {
    id: Arc<str>,
    on_line: SessionCallback,
    on_close: Arc<dyn Fn(&str) + Send + Sync>,
}

impl SessionCtx {
    /// Fire the close notification (idempotence is the caller's duty —
    /// each connection reaches exactly one close site by construction).
    fn closed(&self, metrics: &HttpMetrics) {
        HttpMetrics::add(&metrics.sessions_closed, 1);
        (self.on_close)(&self.id);
    }
}

/// A unit of work for the pool.
enum Job {
    Request(RequestJob),
    SessionLine(SessionLineJob),
}

struct RequestJob {
    stream: TcpStream,
    req: Request,
    queued_at: Instant,
    /// Bytes past the parsed request (pipelined follow-ups) that must
    /// survive the round-trip through the worker.
    leftover: Vec<u8>,
    /// Requests previously served on this connection (keep-alive reuse).
    served: u64,
}

struct SessionLineJob {
    stream: TcpStream,
    ctx: SessionCtx,
    line: String,
    queued_at: Instant,
    leftover: Vec<u8>,
}

/// A connection a worker hands back to the reactor for further requests.
struct Returned {
    stream: TcpStream,
    mode: Mode,
    leftover: Vec<u8>,
    served: u64,
}

/// State shared between the reactor, the workers, and the handle.
struct Shared {
    queue: RecoveringMutex<VecDeque<Job>>,
    /// Signaled when work is pushed (workers wait here).
    ready: Condvar,
    /// Signaled when the queue becomes empty (shutdown drains wait here —
    /// no busy-polling).
    drained: Condvar,
    stop: AtomicBool,
    /// Connections coming back from workers for keep-alive / session
    /// parking; the reactor drains this after every `notify`.
    returns: RecoveringMutex<Vec<Returned>>,
    poller: Poller,
    config: ServerConfig,
    metrics: Arc<HttpMetrics>,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        // Handlers run under catch_unwind and the lock is never held
        // across them, so poisoning should be unreachable; if a holder
        // dies anyway, the torn queue is dropped (each pending connection
        // closes, clients see a reset and retry) and the pool keeps
        // serving — counted, not fatal.
        self.queue.lock_recovering(|q| {
            q.clear();
            HttpMetrics::add(&self.metrics.poison_recoveries, 1);
        })
    }

    fn lock_returns(&self) -> std::sync::MutexGuard<'_, Vec<Returned>> {
        self.returns.lock_recovering(|r| {
            r.clear();
            HttpMetrics::add(&self.metrics.poison_recoveries, 1);
        })
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Hand a connection back to the reactor.
    fn park(&self, conn: Returned) {
        self.lock_returns().push(conn);
        self.poller.notify();
    }
}

// ---------------------------------------------------------------------------
// The reactor: connection slab and state machines.

/// Token carried in epoll events: slot index in the low 32 bits, a
/// generation counter in the high 32 so stale events for a recycled slot
/// are ignored.
fn token_of(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Per-connection phase within the reactor.
enum Phase {
    /// Accumulating request bytes (HTTP) or an utterance line (session).
    Read,
    /// Writing a reactor-generated response (errors, rejections); when
    /// the write completes the connection moves to a lingering close.
    Write { out: Vec<u8>, pos: usize, deadline: Instant, is_reject: bool },
    /// Write half shut; draining client bytes so the close is a FIN the
    /// client can read the response through, not an RST.
    Linger { deadline: Instant },
}

/// How a parked connection speaks.
enum Mode {
    Http,
    Session { ctx: SessionCtx, last_heartbeat: Instant },
}

struct Slot {
    stream: TcpStream,
    gen: u32,
    buf: Vec<u8>,
    phase: Phase,
    mode: Mode,
    last_activity: Instant,
    served: u64,
    interest: Interest,
}

struct Reactor {
    listener: TcpListener,
    shared: Arc<Shared>,
    slots: Vec<Option<Slot>>,
    /// Generation counter per slot index (incremented whenever a slot is
    /// vacated) so stale epoll events for a recycled slot are ignored.
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

/// One step of the nonblocking write state machine (computed under the
/// slot borrow, acted on after it ends).
enum WriteStep {
    Done { linger_deadline: Instant },
    WouldBlock,
    Fail { is_reject: bool },
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let _ = self.shared.poller.wait(&mut events, Some(TICK));
            if self.shared.stopped() {
                break;
            }
            let harvested = std::mem::take(&mut events);
            for ev in &harvested {
                if ev.token == LISTENER_TOKEN {
                    self.accept_burst();
                } else {
                    self.drive(*ev);
                }
            }
            events = harvested;
            self.drain_returns();
            self.sweep_deadlines();
        }
        self.teardown();
    }

    /// Accept every pending connection (the listener is level-triggered,
    /// but draining the backlog per wakeup keeps accept latency flat).
    fn accept_burst(&mut self) {
        let shared = Arc::clone(&self.shared);
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    if self.live >= shared.config.max_connections {
                        // No slot capacity: best-effort immediate 503,
                        // never blocking the accept path.
                        HttpMetrics::add(&shared.metrics.rejected, 1);
                        shared.metrics.count_status(503);
                        let mut s = stream;
                        let response = Response::error(503, "server at connection capacity");
                        if s.write_all(&response_bytes(&response, false)).is_err() {
                            HttpMetrics::add(&shared.metrics.reject_write_failures, 1);
                        }
                        let _ = s.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    HttpMetrics::add(&shared.metrics.accepted, 1);
                    self.insert(stream, Mode::Http, Vec::new(), 0);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Park a connection in the slab with read interest and immediately
    /// try to parse any carried-over bytes (level-triggered epoll won't
    /// re-report bytes that already sit in our buffer).
    fn insert(&mut self, stream: TcpStream, mode: Mode, leftover: Vec<u8>, served: u64) {
        let shared = Arc::clone(&self.shared);
        let _ = stream.set_nonblocking(true);
        let has_buffered = !leftover.is_empty();
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        if idx >= self.gens.len() {
            self.gens.resize(idx + 1, 0);
        }
        let gen = self.gens[idx];
        let fd = stream.as_raw_fd();
        let slot = Slot {
            stream,
            gen,
            buf: leftover,
            phase: Phase::Read,
            mode,
            last_activity: Instant::now(),
            served,
            interest: Interest::Read,
        };
        if shared.poller.add(fd, token_of(idx, gen), Interest::Read).is_err() {
            // Registration failure (fd-table churn): drop the connection.
            if let Mode::Session { ctx, .. } = &slot.mode {
                ctx.closed(&shared.metrics);
            }
            self.free.push(idx);
            return;
        }
        self.slots[idx] = Some(slot);
        self.live += 1;
        if has_buffered {
            self.advance_read(idx);
        }
    }

    fn close_slot(&mut self, idx: usize) {
        if let Some(slot) = self.slots[idx].take() {
            self.shared.poller.remove(slot.stream.as_raw_fd());
            if let Mode::Session { ctx, .. } = &slot.mode {
                ctx.closed(&self.shared.metrics);
            }
            self.free.push(idx);
            self.live -= 1;
            self.gens[idx] = self.gens[idx].wrapping_add(1);
        }
    }

    /// Remove the slot for dispatch to a worker, deregistering the fd but
    /// keeping the stream alive (it travels with the job).
    fn take_for_dispatch(&mut self, idx: usize) -> Option<Slot> {
        let slot = self.slots[idx].take()?;
        self.shared.poller.remove(slot.stream.as_raw_fd());
        self.free.push(idx);
        self.live -= 1;
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        Some(slot)
    }

    fn drive(&mut self, ev: Event) {
        enum Kind {
            Read,
            Write { is_reject: bool },
            Linger,
        }
        let idx = (ev.token & 0xFFFF_FFFF) as usize;
        let gen = (ev.token >> 32) as u32;
        let kind = {
            let Some(slot) = self.slots.get(idx).and_then(|s| s.as_ref()) else { return };
            if slot.gen != gen {
                return; // stale event for a recycled slot
            }
            match &slot.phase {
                Phase::Read => Kind::Read,
                Phase::Write { is_reject, .. } => Kind::Write { is_reject: *is_reject },
                Phase::Linger { .. } => Kind::Linger,
            }
        };
        if ev.error {
            // Peer reset: a rejection in flight counts as an undelivered
            // write; everything closes.
            if let Kind::Write { is_reject: true } = kind {
                HttpMetrics::add(&self.shared.metrics.reject_write_failures, 1);
            }
            self.close_slot(idx);
            return;
        }
        match kind {
            Kind::Read if ev.readable => self.advance_read(idx),
            Kind::Write { .. } if ev.writable || ev.readable => self.advance_write(idx),
            Kind::Linger if ev.readable => self.advance_linger(idx),
            _ => {}
        }
    }

    /// Pull available bytes into the buffer; returns `(eof, io_error)`.
    fn fill_buf(&mut self, idx: usize) -> (bool, bool) {
        let Some(slot) = self.slots[idx].as_mut() else { return (false, true) };
        let mut tmp = [0u8; 4096];
        loop {
            if slot.buf.len() > MAX_HEADER_BYTES + MAX_BODY + 4096 {
                return (false, false); // hard cap; the parser will reject
            }
            match slot.stream.read(&mut tmp) {
                Ok(0) => return (true, false),
                Ok(n) => {
                    slot.buf.extend_from_slice(&tmp[..n]);
                    slot.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return (false, false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (false, true),
            }
        }
    }

    fn advance_read(&mut self, idx: usize) {
        let (eof, io_error) = self.fill_buf(idx);
        let (mid_request, is_session) = {
            let Some(slot) = self.slots[idx].as_ref() else { return };
            (!slot.buf.is_empty(), matches!(slot.mode, Mode::Session { .. }))
        };
        if io_error {
            if mid_request {
                HttpMetrics::add(&self.shared.metrics.io_errors, 1);
            }
            self.close_slot(idx);
            return;
        }
        if is_session {
            self.advance_session_read(idx, eof);
        } else {
            self.advance_http_read(idx, eof);
        }
    }

    fn advance_http_read(&mut self, idx: usize, eof: bool) {
        let shared = Arc::clone(&self.shared);
        let parsed = {
            let Some(slot) = self.slots[idx].as_ref() else { return };
            parse_request(&slot.buf)
        };
        match parsed {
            Parsed::NeedMore => {
                if eof {
                    let (empty, headers_done) = {
                        let Some(slot) = self.slots[idx].as_ref() else { return };
                        (slot.buf.is_empty(), head_end(&slot.buf).is_some())
                    };
                    if empty {
                        // Clean close (end of a keep-alive run, or a
                        // connect-and-leave probe): nothing to answer.
                        self.close_slot(idx);
                    } else {
                        // The client half-closed mid-request: answer the
                        // framing error — a shut write half still reads.
                        HttpMetrics::add(&shared.metrics.parse_errors, 1);
                        let message = if headers_done {
                            "truncated request body"
                        } else {
                            "truncated headers"
                        };
                        self.respond_error(idx, Response::error(400, message), false);
                    }
                }
                // else: keep reading.
            }
            Parsed::Error { status, message } => {
                HttpMetrics::add(&shared.metrics.parse_errors, 1);
                self.respond_error(idx, Response::error(status, message), false);
            }
            Parsed::Request { req, consumed } => {
                let (leftover, served) = {
                    let Some(slot) = self.slots[idx].as_mut() else { return };
                    let leftover = slot.buf.split_off(consumed);
                    slot.buf.clear();
                    (leftover, slot.served)
                };
                if served > 0 {
                    HttpMetrics::add(&shared.metrics.keepalive_reuses, 1);
                }
                // Admission control: a full queue answers 503 through the
                // reactor's nonblocking write path, never a worker.
                let admitted = {
                    let mut q = shared.lock_queue();
                    if q.len() >= shared.config.queue {
                        false
                    } else {
                        let Some(slot) = self.take_for_dispatch(idx) else { return };
                        q.push_back(Job::Request(RequestJob {
                            stream: slot.stream,
                            req,
                            queued_at: Instant::now(),
                            leftover,
                            served,
                        }));
                        true
                    }
                };
                if admitted {
                    shared.ready.notify_one();
                } else {
                    HttpMetrics::add(&shared.metrics.rejected, 1);
                    shared.metrics.count_status(503);
                    self.respond_error(
                        idx,
                        Response::error(503, "server overloaded, retry shortly"),
                        true,
                    );
                }
            }
        }
    }

    fn advance_session_read(&mut self, idx: usize, eof: bool) {
        let shared = Arc::clone(&self.shared);
        let line = {
            let Some(slot) = self.slots[idx].as_mut() else { return };
            match slot.buf.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let rest = slot.buf.split_off(nl + 1);
                    let mut line_bytes = std::mem::replace(&mut slot.buf, rest);
                    line_bytes.pop(); // trailing \n
                    if line_bytes.last() == Some(&b'\r') {
                        line_bytes.pop();
                    }
                    Some(String::from_utf8_lossy(&line_bytes).into_owned())
                }
                None => None,
            }
        };
        let Some(line) = line else {
            let too_long = self.slots[idx].as_ref().is_some_and(|s| s.buf.len() > MAX_SESSION_LINE);
            if too_long || eof {
                // A line that never ends is a protocol violation; EOF is
                // the client hanging up. Either way the session is over.
                self.close_slot(idx);
            }
            return;
        };
        HttpMetrics::add(&shared.metrics.session_lines, 1);
        let Some(slot) = self.take_for_dispatch(idx) else { return };
        let Mode::Session { ctx, .. } = slot.mode else { return };
        shared.lock_queue().push_back(Job::SessionLine(SessionLineJob {
            stream: slot.stream,
            ctx,
            line,
            queued_at: Instant::now(),
            leftover: slot.buf,
        }));
        shared.ready.notify_one();
    }

    /// Begin a reactor-side response (error or rejection): nonblocking
    /// write with a hard deadline, then a deadline-bounded lingering
    /// close. Never blocks the reactor thread.
    fn respond_error(&mut self, idx: usize, response: Response, is_reject: bool) {
        if !is_reject {
            self.shared.metrics.count_status(response.status);
        }
        let out = response_bytes(&response, false);
        let deadline = Instant::now() + self.shared.config.reject_linger;
        if let Some(slot) = self.slots[idx].as_mut() {
            slot.phase = Phase::Write { out, pos: 0, deadline, is_reject };
        }
        self.advance_write(idx);
    }

    fn advance_write(&mut self, idx: usize) {
        let step = loop {
            let Some(slot) = self.slots[idx].as_mut() else { return };
            let Phase::Write { out, pos, deadline, is_reject } = &mut slot.phase else {
                return;
            };
            if *pos >= out.len() {
                break WriteStep::Done { linger_deadline: *deadline };
            }
            match slot.stream.write(&out[*pos..]) {
                Ok(0) => break WriteStep::Fail { is_reject: *is_reject },
                Ok(n) => *pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break WriteStep::WouldBlock,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break WriteStep::Fail { is_reject: *is_reject },
            }
        };
        match step {
            WriteStep::WouldBlock => self.arm(idx, Interest::Write),
            WriteStep::Fail { is_reject } => {
                if is_reject {
                    HttpMetrics::add(&self.shared.metrics.reject_write_failures, 1);
                }
                self.close_slot(idx);
            }
            WriteStep::Done { linger_deadline } => {
                if let Some(slot) = self.slots[idx].as_mut() {
                    let _ = slot.stream.shutdown(std::net::Shutdown::Write);
                    slot.phase = Phase::Linger { deadline: linger_deadline };
                }
                self.arm(idx, Interest::Read);
                self.advance_linger(idx);
            }
        }
    }

    fn advance_linger(&mut self, idx: usize) {
        let done = {
            let Some(slot) = self.slots[idx].as_mut() else { return };
            let mut tmp = [0u8; 1024];
            loop {
                match slot.stream.read(&mut tmp) {
                    Ok(0) => break true,
                    Ok(_) => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            }
        };
        if done {
            self.close_slot(idx);
        }
    }

    /// Re-arm epoll interest if it changed.
    fn arm(&mut self, idx: usize, interest: Interest) {
        let shared = Arc::clone(&self.shared);
        let Some(slot) = self.slots[idx].as_mut() else { return };
        if slot.interest == interest {
            return;
        }
        let fd = slot.stream.as_raw_fd();
        let token = token_of(idx, slot.gen);
        if shared.poller.modify(fd, token, interest).is_ok() {
            slot.interest = interest;
        }
    }

    /// Reinsert connections handed back by workers.
    fn drain_returns(&mut self) {
        let returned: Vec<Returned> = std::mem::take(&mut *self.shared.lock_returns());
        for conn in returned {
            if self.shared.stopped() {
                self.farewell(conn);
                continue;
            }
            self.insert(conn.stream, conn.mode, conn.leftover, conn.served);
        }
    }

    fn farewell(&mut self, conn: Returned) {
        if let Mode::Session { ctx, .. } = &conn.mode {
            let mut s = conn.stream;
            let _ = s.write_all(b"{\"type\":\"bye\",\"reason\":\"shutdown\"}\n");
            ctx.closed(&self.shared.metrics);
        }
    }

    /// Time-based transitions: read timeouts, keep-alive idling, session
    /// heartbeats and reaping, write/linger deadlines.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let read_timeout = self.shared.config.read_timeout;
        let idle_timeout = self.shared.config.idle_timeout;
        let session_idle = self.shared.config.session_idle_timeout;
        let heartbeat = self.shared.config.heartbeat;
        let metrics = Arc::clone(&self.shared.metrics);

        enum Action {
            Timeout408,
            CloseIdle,
            CloseSilent,
            CloseReject,
            SessionReap,
            Heartbeat,
        }
        let mut actions: Vec<(usize, Action)> = Vec::new();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let Some(slot) = slot else { continue };
            match &slot.phase {
                Phase::Read => match &mut slot.mode {
                    Mode::Http => {
                        // A fresh connection or one with a partial request
                        // buffered is "mid-request" (408 on stall); a
                        // parked keep-alive connection idles out silently.
                        let mid_request = !slot.buf.is_empty() || slot.served == 0;
                        if mid_request && now >= slot.last_activity + read_timeout {
                            actions.push((idx, Action::Timeout408));
                        } else if !mid_request && now >= slot.last_activity + idle_timeout {
                            actions.push((idx, Action::CloseIdle));
                        }
                    }
                    Mode::Session { last_heartbeat, .. } => {
                        if now >= slot.last_activity + session_idle {
                            actions.push((idx, Action::SessionReap));
                        } else if now >= *last_heartbeat + heartbeat {
                            *last_heartbeat = now;
                            actions.push((idx, Action::Heartbeat));
                        }
                    }
                },
                Phase::Write { deadline, is_reject, .. } => {
                    if now >= *deadline {
                        actions.push((
                            idx,
                            if *is_reject { Action::CloseReject } else { Action::CloseSilent },
                        ));
                    }
                }
                Phase::Linger { deadline } => {
                    if now >= *deadline {
                        actions.push((idx, Action::CloseSilent));
                    }
                }
            }
        }
        for (idx, action) in actions {
            match action {
                Action::Timeout408 => {
                    HttpMetrics::add(&metrics.timeouts, 1);
                    self.respond_error(idx, Response::error(408, "request timed out"), false);
                }
                Action::CloseIdle => {
                    HttpMetrics::add(&metrics.idle_closed, 1);
                    self.close_slot(idx);
                }
                Action::CloseSilent => self.close_slot(idx),
                Action::CloseReject => {
                    HttpMetrics::add(&metrics.reject_write_failures, 1);
                    self.close_slot(idx);
                }
                Action::SessionReap => {
                    HttpMetrics::add(&metrics.idle_closed, 1);
                    if let Some(slot) = self.slots[idx].as_mut() {
                        let _ = slot.stream.write_all(b"{\"type\":\"bye\",\"reason\":\"idle\"}\n");
                    }
                    self.close_slot(idx);
                }
                Action::Heartbeat => {
                    let beat = b"{\"type\":\"heartbeat\"}\n";
                    let wrote = {
                        let Some(slot) = self.slots[idx].as_mut() else { continue };
                        slot.stream.write(beat)
                    };
                    match wrote {
                        Ok(n) if n == beat.len() => {
                            HttpMetrics::add(&metrics.heartbeats_sent, 1);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            // Send buffer full: skip this beat; the idle
                            // reaper handles a client that never drains.
                        }
                        // A partial write would corrupt NDJSON framing and
                        // only happens with an undrained send buffer —
                        // treat it like a dead peer.
                        Ok(_) | Err(_) => self.close_slot(idx),
                    }
                }
            }
        }
    }

    fn teardown(&mut self) {
        for idx in 0..self.slots.len() {
            if let Some(slot) = self.slots[idx].as_mut() {
                if matches!(slot.mode, Mode::Session { .. }) {
                    let _ = slot.stream.write_all(b"{\"type\":\"bye\",\"reason\":\"shutdown\"}\n");
                }
                self.close_slot(idx);
            }
        }
        // Connections still parked in the return channel when the reactor
        // exits are farewelled by shutdown_within after workers join.
    }
}

// ---------------------------------------------------------------------------
// Workers.

fn worker_loop<F>(shared: &Shared, handler: &F)
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    if queue.is_empty() {
                        shared.drained.notify_all();
                    }
                    break Some(job);
                }
                if shared.stopped() {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(queue, WORKER_POLL)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        match job {
            Some(Job::Request(job)) => handle_request(job, shared, handler),
            Some(Job::SessionLine(job)) => handle_session_line(job, shared),
            None => return,
        }
    }
}

fn handle_request<F>(job: RequestJob, shared: &Shared, handler: &F)
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    let RequestJob { mut stream, req, queued_at, leftover, served } = job;
    let metrics = &shared.metrics;
    let config = &shared.config;
    let queue_wait = queued_at.elapsed();
    HttpMetrics::add(&metrics.queue_wait_us, queue_wait.as_micros() as u64);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    let started = Instant::now();
    HttpMetrics::add(&metrics.requests, 1);
    HttpMetrics::add(&metrics.bytes_in, req.body.len() as u64);
    let mut response = match catch_unwind(AssertUnwindSafe(|| handler(&req))) {
        Ok(response) => response,
        Err(_) => {
            HttpMetrics::add(&metrics.panics, 1);
            Response::error(500, "internal server error")
        }
    };

    // Session upgrade: handshake, greet, park as a session connection.
    if let Some(upgrade) = response.session.take() {
        metrics.count_status(101);
        let mut handshake = String::from(
            "HTTP/1.1 101 Switching Protocols\r\nUpgrade: voxolap-session\r\nConnection: Upgrade\r\n\r\n",
        );
        if let Some(hello) = &upgrade.hello {
            handshake.push_str(hello);
            if !hello.ends_with('\n') {
                handshake.push('\n');
            }
        }
        let ctx = SessionCtx {
            id: Arc::from(upgrade.id.as_str()),
            on_line: upgrade.on_line,
            on_close: upgrade.on_close,
        };
        if stream.write_all(handshake.as_bytes()).and_then(|()| stream.flush()).is_err() {
            HttpMetrics::add(&metrics.io_errors, 1);
            ctx.closed(metrics);
            return;
        }
        HttpMetrics::add(&metrics.bytes_out, handshake.len() as u64);
        HttpMetrics::add(&metrics.sessions_opened, 1);
        shared.park(Returned {
            stream,
            mode: Mode::Session { ctx, last_heartbeat: Instant::now() },
            leftover,
            served: served + 1,
        });
        return;
    }

    metrics.count_status(response.status);
    // Keep-alive only when the client asked, the config allows it, and
    // the response isn't a serving-layer failure.
    let keep = config.keep_alive && req.keep_alive && !shared.stopped() && response.status < 500;
    let mut bytes_out = 0u64;
    let mut reusable = keep;
    match response.stream.take() {
        Some(body_fn) => {
            let (bytes, complete) = write_streaming(
                &mut stream,
                response.status,
                response.status_text(),
                body_fn,
                keep,
            );
            bytes_out = bytes;
            HttpMetrics::add(&metrics.bytes_out, bytes_out);
            reusable &= complete;
        }
        None => match write_response(&mut stream, &response, keep) {
            Ok(()) => {
                bytes_out = response.body.len() as u64;
                HttpMetrics::add(&metrics.bytes_out, bytes_out);
            }
            Err(_) => {
                HttpMetrics::add(&metrics.io_errors, 1);
                reusable = false;
            }
        },
    }
    let handle = started.elapsed();
    HttpMetrics::add(&metrics.handle_us, handle.as_micros() as u64);
    if config.log_requests {
        eprintln!(
            "http method={} path={} status={} bytes_in={} bytes_out={} queue_ms={:.2} handler_ms={:.2} reused={}",
            req.method,
            req.path,
            response.status,
            req.body.len(),
            bytes_out,
            queue_wait.as_secs_f64() * 1e3,
            handle.as_secs_f64() * 1e3,
            served > 0,
        );
    }
    if reusable {
        shared.park(Returned { stream, mode: Mode::Http, leftover, served: served + 1 });
    }
    // else: drop → close. Handler responses are fully framed, so a plain
    // close (no linger) is correct here; linger is for the error paths
    // where the request body may still be in flight.
}

fn handle_session_line(job: SessionLineJob, shared: &Shared) {
    let SessionLineJob { mut stream, ctx, line, queued_at, leftover } = job;
    let metrics = &shared.metrics;
    HttpMetrics::add(&metrics.queue_wait_us, queued_at.elapsed().as_micros() as u64);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));

    if line.is_empty() {
        // Blank keep-alive line: just park again.
        shared.park(Returned {
            stream,
            mode: Mode::Session { ctx, last_heartbeat: Instant::now() },
            leftover,
            served: 0,
        });
        return;
    }

    let mut sink = SessionSink { stream: &mut stream, bytes_out: 0, failed: false };
    let verdict = match catch_unwind(AssertUnwindSafe(|| (ctx.on_line)(&line, &mut sink))) {
        Ok(v) => v,
        Err(_) => {
            HttpMetrics::add(&metrics.panics, 1);
            sink.send_line("{\"type\":\"error\",\"message\":\"internal error\"}");
            SessionVerdict::Continue
        }
    };
    let failed = sink.failed;
    HttpMetrics::add(&metrics.bytes_out, sink.bytes_out);

    if verdict == SessionVerdict::Continue && !failed && !shared.stopped() {
        shared.park(Returned {
            stream,
            mode: Mode::Session { ctx, last_heartbeat: Instant::now() },
            leftover,
            served: 0,
        });
    } else {
        ctx.closed(metrics);
    }
}

// ---------------------------------------------------------------------------
// Handle, serve, shutdown.

/// Handle to a running server: its bound address, metrics, and shutdown.
pub struct ServerHandle {
    /// The address the listener bound (useful with port 0).
    pub addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    metrics: Arc<HttpMetrics>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving-layer counters for this server.
    pub fn metrics(&self) -> Arc<HttpMetrics> {
        self.metrics.clone()
    }

    /// Gracefully stop with a 5-second drain deadline.
    pub fn shutdown(self) {
        self.shutdown_within(Duration::from_secs(5));
    }

    /// Stop accepting, let workers drain queued requests until `drain`
    /// elapses, then answer whatever is still queued with a `503` — each
    /// admitted request is answered exactly once (workers pop and the
    /// late drain both run under the queue lock; the drain waits on a
    /// condvar the workers signal, no polling).
    pub fn shutdown_within(mut self, drain: Duration) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.poller.notify();
        self.shared.ready.notify_all();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join(); // bounded by TICK
        }
        let deadline = Instant::now() + drain;
        let stale: Vec<Job> = {
            let mut queue = self.shared.lock_queue();
            loop {
                if queue.is_empty() {
                    break Vec::new();
                }
                let now = Instant::now();
                if now >= deadline {
                    break queue.drain(..).collect();
                }
                let (guard, _) = self
                    .shared
                    .drained
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        for job in stale {
            reject_late(job, &self.shared);
        }
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join(); // workers exit once stopped and drained
        }
        // Connections workers handed back after the reactor exited.
        for conn in self.shared.lock_returns().drain(..) {
            if let Mode::Session { ctx, .. } = &conn.mode {
                let mut s = &conn.stream;
                let _ = s.write_all(b"{\"type\":\"bye\",\"reason\":\"shutdown\"}\n");
                ctx.closed(&self.metrics);
            }
        }
    }
}

/// Answer a request that was still queued when the drain deadline fired.
/// Blocking writes with short timeouts are fine here: shutdown runs on
/// the caller's thread, not the reactor.
fn reject_late(job: Job, shared: &Shared) {
    let metrics = &shared.metrics;
    match job {
        Job::Request(job) => {
            HttpMetrics::add(&metrics.rejected, 1);
            metrics.count_status(503);
            let mut stream = job.stream;
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let response = Response::error(503, "server shutting down");
            if write_response(&mut stream, &response, false).is_err() {
                HttpMetrics::add(&metrics.reject_write_failures, 1);
                return;
            }
            linger_close(stream, Instant::now() + shared.config.reject_linger);
        }
        Job::SessionLine(job) => {
            let mut stream = job.stream;
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = stream.write_all(b"{\"type\":\"bye\",\"reason\":\"shutdown\"}\n");
            job.ctx.closed(metrics);
        }
    }
}

/// Close the write half and drain whatever the client already sent until
/// EOF or `deadline`, so closing a socket with unread input yields a FIN
/// the client can read the response through, not an RST. The total time
/// is bounded by `deadline` regardless of how slowly the client dribbles.
fn linger_close(mut stream: TcpStream, deadline: Instant) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let _ = stream.set_read_timeout(Some((deadline - now).min(Duration::from_millis(100))));
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

/// Start serving on `addr` with default [`ServerConfig`] and fresh
/// metrics. See [`serve_with`].
pub fn serve<F>(addr: &str, handler: F) -> std::io::Result<ServerHandle>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    serve_with(addr, ServerConfig::default(), HttpMetrics::new(), handler)
}

/// Start serving on `addr` (e.g. `"127.0.0.1:0"`): a reactor thread
/// multiplexes all connections over epoll and dispatches parsed requests
/// to a fixed pool of `config.threads` workers through a bounded queue.
/// Returns once the listener is bound; all threads run in the background
/// until [`ServerHandle::shutdown`].
///
/// Pass the same `metrics` to the request handler (e.g. via
/// `AppState::with_http_metrics`) to surface the counters in `GET /stats`.
pub fn serve_with<F>(
    addr: &str,
    config: ServerConfig,
    metrics: Arc<HttpMetrics>,
    handler: F,
) -> std::io::Result<ServerHandle>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let poller = Poller::new()?;
    let shared = Arc::new(Shared {
        queue: RecoveringMutex::new(VecDeque::new()),
        ready: Condvar::new(),
        drained: Condvar::new(),
        stop: AtomicBool::new(false),
        returns: RecoveringMutex::new(Vec::new()),
        poller,
        config: ServerConfig { threads: config.threads.max(1), ..config },
        metrics: metrics.clone(),
    });
    let handler = Arc::new(handler);

    let workers = (0..shared.config.threads)
        .map(|i| {
            let shared = shared.clone();
            let handler = handler.clone();
            std::thread::Builder::new()
                .name(format!("http-worker-{i}"))
                .spawn(move || worker_loop(&shared, handler.as_ref()))
                .expect("spawn http worker")
        })
        .collect();

    shared.poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::Read)?;
    let reactor_thread = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("http-reactor".to_string())
            .spawn(move || {
                Reactor {
                    listener,
                    shared,
                    slots: Vec::new(),
                    gens: Vec::new(),
                    free: Vec::new(),
                    live: 0,
                }
                .run()
            })
            .expect("spawn http reactor")
    };

    Ok(ServerHandle { addr: bound, shared, metrics, reactor_thread: Some(reactor_thread), workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn start_echo() -> ServerHandle {
        serve("127.0.0.1:0", |req| {
            Response::ok(format!(
                "{{\"method\":{:?},\"path\":{:?},\"len\":{}}}",
                req.method,
                req.path,
                req.body.len()
            ))
        })
        .expect("bind")
    }

    fn raw_request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    /// Read exactly one `Content-Length`-framed response off a keep-alive
    /// connection (header section + declared body bytes).
    fn read_one_response(s: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut tmp = [0u8; 1024];
        let head_len = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            let n = s.read(&mut tmp).unwrap();
            assert!(n > 0, "EOF before headers: {:?}", String::from_utf8_lossy(&buf));
            buf.extend_from_slice(&tmp[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_len]).to_string();
        let body_len: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string)
            })
            .map(|v| v.trim().parse().unwrap())
            .unwrap_or(0);
        while buf.len() < head_len + body_len {
            let n = s.read(&mut tmp).unwrap();
            assert!(n > 0, "EOF mid-body");
            buf.extend_from_slice(&tmp[..n]);
        }
        String::from_utf8_lossy(&buf[..head_len + body_len]).to_string()
    }

    #[test]
    fn parses_method_path_and_body() {
        let server = start_echo();
        let out = raw_request(
            server.addr,
            "POST /ask?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        );
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("\"method\":\"POST\""));
        assert!(out.contains("\"path\":\"/ask\""), "query string stripped: {out}");
        assert!(out.contains("\"len\":4"));
        server.shutdown();
    }

    #[test]
    fn bodyless_get() {
        let server = start_echo();
        let out = raw_request(server.addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.contains("\"path\":\"/health\""));
        assert!(out.contains("\"len\":0"));
        server.shutdown();
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        let server = start_echo();
        // Only the headers are sent — the server must answer 413 from the
        // declared length alone, without waiting for body bytes.
        let out = raw_request(
            server.addr,
            &format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 10),
        );
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        assert_eq!(server.metrics().snapshot().parse_errors, 1);
        server.shutdown();
    }

    #[test]
    fn non_numeric_content_length_is_a_400() {
        let server = start_echo();
        let out =
            raw_request(server.addr, "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\nabcd");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("invalid Content-Length"), "{out}");
        server.shutdown();
    }

    #[test]
    fn conflicting_content_lengths_are_a_400() {
        let server = start_echo();
        let out = raw_request(
            server.addr,
            "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcd",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("conflicting Content-Length"), "{out}");
        // Identical duplicates stay accepted.
        let out = raw_request(
            server.addr,
            "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
        );
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        server.shutdown();
    }

    #[test]
    fn truncated_body_is_a_400() {
        let server = start_echo();
        // Fewer bytes than declared, then EOF (not a stall): the client
        // must close its write half so the server sees EOF, not silence.
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn oversized_headers_are_a_431() {
        let server = start_echo();
        let huge = format!("GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n", "j".repeat(MAX_HEADER_BYTES));
        let mut s = TcpStream::connect(server.addr).unwrap();
        // The server may respond and close before the write finishes;
        // tolerate the resulting EPIPE.
        let _ = s.write_all(huge.as_bytes());
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");
        server.shutdown();
    }

    #[test]
    fn stalled_body_times_out_with_a_408() {
        let config = ServerConfig::default().with_timeout_ms(200);
        let metrics = HttpMetrics::new();
        let server =
            serve_with("127.0.0.1:0", config, metrics, |_| Response::ok("{}".to_string())).unwrap();
        let start = Instant::now();
        let mut s = TcpStream::connect(server.addr).unwrap();
        // Headers promise 10 bytes; the body never comes.
        s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: 10\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        assert!(start.elapsed() < Duration::from_secs(3), "timeout fired late");
        assert_eq!(server.metrics().snapshot().timeouts, 1);
        server.shutdown();
    }

    #[test]
    fn panicking_handler_returns_500_and_counts() {
        let server = serve("127.0.0.1:0", |req| {
            if req.path == "/boom" {
                panic!("handler exploded");
            }
            Response::ok("{}".to_string())
        })
        .unwrap();
        let out = raw_request(server.addr, "GET /boom HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 500"), "{out}");
        assert!(out.contains("{\"error\":\"internal server error\"}"), "{out}");
        // The worker survives the panic and keeps serving.
        let out = raw_request(server.addr, "GET /fine HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        let snap = server.metrics().snapshot();
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.responses_5xx, 1);
        server.shutdown();
    }

    #[test]
    fn saturated_queue_yields_503_with_retry_after() {
        use std::sync::mpsc;
        // One worker stuck in the handler + a single queue slot: the
        // third concurrent connection must be rejected up front.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let config = ServerConfig { threads: 1, queue: 1, ..ServerConfig::default() };
        let server = serve_with("127.0.0.1:0", config, HttpMetrics::new(), move |_| {
            let _ = release_rx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(Duration::from_secs(5));
            Response::ok("{}".to_string())
        })
        .unwrap();
        let addr = server.addr;

        let mut occupy = Vec::new();
        // First connection: wait until its request is *in the handler*
        // (the `requests` counter ticks just before dispatch), so the
        // single worker is provably busy before the next one arrives.
        occupy.push(std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().snapshot().requests < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Second connection: fills the single queue slot.
        occupy.push(std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while {
            let q = server.shared.lock_queue().len();
            q < 1 && Instant::now() < deadline
        } {
            std::thread::sleep(Duration::from_millis(5));
        }
        let out = raw_request(addr, "GET /rejected HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        assert!(out.contains("Retry-After: 1"), "{out}");
        assert_eq!(server.metrics().snapshot().rejected, 1);

        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        for h in occupy {
            assert!(h.join().unwrap().starts_with("HTTP/1.1 200"));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = start_echo();
        let addr = server.addr;
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    raw_request(addr, &format!("GET /r{i} HTTP/1.1\r\n\r\n"))
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.join().unwrap();
            assert!(out.contains(&format!("/r{i}")));
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.requests, 8);
        assert_eq!(snap.responses_2xx, 8);
        server.shutdown();
    }

    #[test]
    fn streaming_response_is_chunked_with_terminal_chunk() {
        let server = serve("127.0.0.1:0", |_req| {
            Response::streaming(|w| {
                assert!(w.send("{\"n\":1}\n"));
                assert!(w.send("{\"n\":2}\n"));
            })
        })
        .unwrap();
        let out = raw_request(server.addr, "GET /s HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.contains("Transfer-Encoding: chunked"), "{out}");
        assert!(out.contains("application/x-ndjson"), "{out}");
        assert!(out.contains("{\"n\":1}"), "{out}");
        assert!(out.contains("{\"n\":2}"), "{out}");
        assert!(out.ends_with("0\r\n\r\n"), "terminal chunk present: {out:?}");
        let snap = server.metrics().snapshot();
        assert_eq!(snap.bytes_out, 16, "two 8-byte chunks counted");
        server.shutdown();
    }

    #[test]
    fn stream_writer_detects_client_disconnect() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<bool>();
        let tx = Mutex::new(tx);
        let server = serve("127.0.0.1:0", move |_req| {
            let tx = tx.lock().unwrap_or_else(|e| e.into_inner()).clone();
            Response::streaming(move |w| {
                assert!(w.send("{\"n\":1}\n"));
                let deadline = Instant::now() + Duration::from_secs(5);
                let mut gone = false;
                while !gone && Instant::now() < deadline {
                    gone = w.client_gone();
                    std::thread::sleep(Duration::from_millis(10));
                }
                let _ = tx.send(gone);
            })
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.write_all(b"GET /s HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf); // first chunk arrived
        drop(s);
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "writer saw the disconnect");
        server.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = start_echo();
        let addr = server.addr;
        server.shutdown();
        // After shutdown the port refuses or resets; either way no 200.
        let result = TcpStream::connect(addr);
        if let Ok(mut s) = result {
            let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("200 OK"), "{out}");
        }
    }

    #[test]
    fn shutdown_is_deadline_bounded() {
        // Even with traffic in flight, shutdown_within returns promptly.
        let server = start_echo();
        let start = Instant::now();
        server.shutdown_within(Duration::from_millis(500));
        assert!(start.elapsed() < Duration::from_secs(5), "shutdown hung");
    }

    #[test]
    fn keep_alive_reuses_one_connection_for_many_requests() {
        let server = start_echo();
        let mut s = TcpStream::connect(server.addr).unwrap();
        for i in 0..3 {
            s.write_all(
                format!("GET /ka{i} HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").as_bytes(),
            )
            .unwrap();
            let out = read_one_response(&mut s);
            assert!(out.starts_with("HTTP/1.1 200"), "{out}");
            assert!(out.contains("Connection: keep-alive"), "{out}");
            assert!(out.contains(&format!("/ka{i}")), "{out}");
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.keepalive_reuses, 2, "follow-ups counted as reuses");
        assert_eq!(snap.accepted, 1, "one TCP connection for all three");
        server.shutdown();
    }

    #[test]
    fn keep_alive_is_opt_in_per_request() {
        // Without the header the server closes after one response, so
        // legacy read-to-EOF clients keep working.
        let server = start_echo();
        let out = raw_request(server.addr, "GET /one HTTP/1.1\r\n\r\n");
        assert!(out.contains("Connection: close"), "{out}");
        assert_eq!(server.metrics().snapshot().keepalive_reuses, 0);
        server.shutdown();
    }

    #[test]
    fn session_upgrade_carries_ndjson_lines_both_ways() {
        let server = serve("127.0.0.1:0", |req| {
            if req.path == "/attach" {
                Response::upgrade_session(SessionUpgrade {
                    id: "s1".to_string(),
                    hello: Some("{\"type\":\"hello\",\"session\":\"s1\"}".to_string()),
                    on_line: Arc::new(|line, sink| {
                        if line.contains("bye") {
                            sink.send_line("{\"type\":\"bye\"}");
                            return SessionVerdict::Close;
                        }
                        sink.send_line(&format!("{{\"type\":\"echo\",\"got\":{}}}", line.len()));
                        SessionVerdict::Continue
                    }),
                    on_close: Arc::new(|_| {}),
                })
            } else {
                Response::error(404, "not found")
            }
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.write_all(b"GET /attach HTTP/1.1\r\nConnection: Upgrade\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        use std::io::BufRead;
        // 101 + empty line + hello.
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 101"), "{line}");
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
        }
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"hello\""), "{line}");
        // Two utterances on the same connection.
        for n in [3usize, 7] {
            s.write_all(format!("{{\"utter\":\"{}\"}}\n", "x".repeat(n)).as_bytes()).unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"echo\""), "{line}");
        }
        // Farewell closes the connection server-side.
        s.write_all(b"{\"cmd\":\"bye\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"bye\""), "{line}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "EOF after bye: {line}");
        let snap = server.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1);
        assert_eq!(snap.session_lines, 3);
        server.shutdown();
    }

    #[test]
    fn idle_session_gets_heartbeats_and_is_eventually_reaped() {
        let config = ServerConfig {
            heartbeat: Duration::from_millis(80),
            session_idle_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        };
        let closed = Arc::new(AtomicU64::new(0));
        let closed2 = closed.clone();
        let server = serve_with("127.0.0.1:0", config, HttpMetrics::new(), move |_| {
            let closed = closed2.clone();
            Response::upgrade_session(SessionUpgrade {
                id: "idle".to_string(),
                hello: None,
                on_line: Arc::new(|_, _| SessionVerdict::Continue),
                on_close: Arc::new(move |_| {
                    closed.fetch_add(1, Ordering::Relaxed);
                }),
            })
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.write_all(b"GET /attach HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        // The server heartbeats, then reaps the idle session and closes,
        // unblocking read_to_string.
        s.read_to_string(&mut out).unwrap();
        assert!(out.contains("\"heartbeat\""), "{out}");
        assert!(out.contains("\"reason\":\"idle\""), "{out}");
        let snap = server.metrics().snapshot();
        assert!(snap.heartbeats_sent >= 1, "{snap:?}");
        assert_eq!(snap.idle_closed, 1);
        assert_eq!(closed.load(Ordering::Relaxed), 1, "on_close fired exactly once");
        server.shutdown();
    }

    #[test]
    fn reject_write_failure_is_counted_not_panicked() {
        // A client that vanishes before its 503 can be written: the
        // reactor counts the failed delivery and moves on.
        let config = ServerConfig { max_connections: 1, ..ServerConfig::default() };
        let server = serve_with("127.0.0.1:0", config, HttpMetrics::new(), |_| {
            Response::ok("{}".to_string())
        })
        .unwrap();
        // Occupy the single slot with a parked connection.
        let _held = TcpStream::connect(server.addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().snapshot().accepted < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Over-capacity connections get an immediate best-effort 503.
        let mut over = TcpStream::connect(server.addr).unwrap();
        let mut out = String::new();
        let _ = over.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 503") || out.is_empty(), "{out}");
        assert!(server.metrics().snapshot().rejected >= 1);
        server.shutdown();
    }
}
