//! Minimal HTTP/1.1 server over `std::net`, hardened for real traffic.
//!
//! Enough protocol for a JSON API: request line, headers,
//! `Content-Length` bodies, one response per connection
//! (`Connection: close`). No TLS, no chunked encoding, no keep-alive —
//! the *protocol* mirrors the paper's simple JEE servlet backend, but the
//! *serving path* is built for load:
//!
//! - a fixed-size worker pool fed by a bounded queue — when the queue is
//!   full new connections get `503` + `Retry-After` instead of an
//!   unbounded thread spawn;
//! - read/write socket timeouts on every connection — a stalled client
//!   (e.g. `Content-Length` larger than the bytes actually sent) gets a
//!   `408` when the timeout fires instead of wedging a worker forever;
//! - strict request parsing — malformed or conflicting `Content-Length`
//!   headers are `400`s, oversized declared bodies are `413`s answered
//!   *without* reading or allocating the body, header sections are
//!   capped;
//! - panic isolation — a panicking handler yields a `500` JSON error and
//!   a counter increment, not a dead connection;
//! - graceful shutdown — stop accepting, drain queued requests within a
//!   deadline (late stragglers get `503`s), join workers deterministically;
//! - per-request observability — atomic [`HttpMetrics`] counters and an
//!   optional structured request log line (method, path, status, bytes,
//!   queue wait, handler latency).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on accepted request bodies (64 KiB — questions are short).
const MAX_BODY: usize = 64 * 1024;

/// Upper bound on the request line + header section.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// How often the nonblocking accept loop polls for new connections (and
/// rechecks the stop flag — this bounds shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How often idle workers recheck the stop flag while waiting for work.
const WORKER_POLL: Duration = Duration::from_millis(100);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (without query string).
    pub path: String,
    /// Request body (empty for bodyless methods).
    pub body: Vec<u8>,
}

/// A callback producing a chunked response body incrementally.
pub type StreamBody = Box<dyn FnOnce(&mut BodyWriter<'_>) + Send>;

/// An HTTP response to send.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON). Ignored when `stream` is set.
    pub body: String,
    /// When set, the response is sent `Transfer-Encoding: chunked` and
    /// this callback writes the body through a [`BodyWriter`], one chunk
    /// per call, flushed to the socket as it is produced.
    pub stream: Option<StreamBody>,
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Response")
            .field("status", &self.status)
            .field("body", &self.body)
            .field("streaming", &self.stream.is_some())
            .finish()
    }
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn ok(body: String) -> Self {
        Response { status: 200, body, stream: None }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            body: format!("{{\"error\":{}}}", voxolap_json::escape(message)),
            stream: None,
        }
    }

    /// A 200 response whose body is produced incrementally by `body` and
    /// delivered with chunked transfer encoding as it is written — used
    /// for NDJSON sentence streams.
    pub fn streaming(body: impl FnOnce(&mut BodyWriter<'_>) + Send + 'static) -> Self {
        Response { status: 200, body: String::new(), stream: Some(Box::new(body)) }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// Why a request could not be parsed into a [`Request`].
#[derive(Debug)]
enum RequestError {
    /// The client closed the connection without sending anything.
    Empty,
    /// Malformed request line, header, or body framing — answer 400.
    Bad(&'static str),
    /// Request line + headers exceed [`MAX_HEADER_BYTES`] — answer 431.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds [`MAX_BODY`] — answer 413
    /// without reading (or allocating) the body.
    TooLarge,
    /// A socket read timed out mid-request — answer 408.
    Timeout,
    /// Some other I/O error; the connection is unusable.
    Io,
}

fn classify_io(e: &std::io::Error) -> RequestError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => RequestError::Timeout,
        ErrorKind::UnexpectedEof => RequestError::Bad("truncated request body"),
        _ => RequestError::Io,
    }
}

/// Read and parse one request from a stream.
///
/// The header section is read through a [`Read::take`] cap so a client
/// streaming endless headers cannot grow memory without bound, and the
/// body is only allocated once the declared length passed validation.
fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let reader = BufReader::new(stream.try_clone().map_err(|e| classify_io(&e))?);
    let mut head = reader.take(MAX_HEADER_BYTES as u64);

    let mut request_line = String::new();
    match head.read_line(&mut request_line) {
        Ok(0) => return Err(RequestError::Empty),
        Ok(_) => {}
        Err(e) => return Err(classify_io(&e)),
    }
    if !request_line.ends_with('\n') && head.limit() == 0 {
        return Err(RequestError::HeadersTooLarge);
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(RequestError::Bad("malformed request line"));
    };
    let path = target.split('?').next().unwrap_or(target).to_string();
    let method = method.to_string();

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        match head.read_line(&mut line) {
            Ok(0) if head.limit() == 0 => return Err(RequestError::HeadersTooLarge),
            Ok(0) => return Err(RequestError::Bad("truncated headers")),
            Ok(_) => {}
            Err(e) => return Err(classify_io(&e)),
        }
        if !line.ends_with('\n') && head.limit() == 0 {
            return Err(RequestError::HeadersTooLarge);
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.trim().parse::<usize>() else {
                    return Err(RequestError::Bad("invalid Content-Length"));
                };
                // Identical repeats are tolerated; conflicting values
                // would desynchronize body framing — reject them.
                if content_length.is_some_and(|prev| prev != n) {
                    return Err(RequestError::Bad("conflicting Content-Length headers"));
                }
                content_length = Some(n);
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    // Body bytes may already sit in the BufReader; keep reading through it.
    let mut reader = head.into_inner();
    reader.read_exact(&mut body).map_err(|e| classify_io(&e))?;
    Ok(Request { method, path, body })
}

/// Incremental body writer handed to [`Response::streaming`] callbacks.
///
/// Each [`send`](BodyWriter::send) call becomes one HTTP chunk, flushed
/// immediately so the client sees every sentence the moment it is
/// planned. [`client_gone`](BodyWriter::client_gone) lets the producer
/// poll for a disconnected consumer and abort planning early.
pub struct BodyWriter<'a> {
    stream: &'a mut TcpStream,
    bytes_out: u64,
    failed: bool,
}

impl BodyWriter<'_> {
    /// Send one chunk (hex-length framed) and flush it to the socket.
    /// Returns `false` once the client is unreachable; subsequent sends
    /// are no-ops.
    pub fn send(&mut self, chunk: &str) -> bool {
        if self.failed || chunk.is_empty() {
            return !self.failed;
        }
        let framed = format!("{:x}\r\n{chunk}\r\n", chunk.len());
        match self.stream.write_all(framed.as_bytes()).and_then(|()| self.stream.flush()) {
            Ok(()) => {
                self.bytes_out += chunk.len() as u64;
                true
            }
            Err(_) => {
                self.failed = true;
                false
            }
        }
    }

    /// Whether the client has hung up. Clients of a streaming response
    /// send nothing after the request, so a readable EOF (or a reset)
    /// means the peer is gone; a would-block read means it is still
    /// listening. The check is a nonblocking 1-byte peek — cheap enough
    /// to poll between sentences.
    pub fn client_gone(&mut self) -> bool {
        if self.failed {
            return true;
        }
        if self.stream.set_nonblocking(true).is_err() {
            self.failed = true;
            return true;
        }
        let mut probe = [0u8; 1];
        let gone = match self.stream.peek(&mut probe) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) if e.kind() == ErrorKind::WouldBlock => false,
            Err(_) => true,
        };
        let _ = self.stream.set_nonblocking(false);
        if gone {
            self.failed = true;
        }
        gone
    }
}

/// Send a chunked streaming response: status line + headers, then each
/// chunk as the handler produces it, then the terminal zero-length chunk.
/// Returns the body bytes successfully written.
fn write_streaming(
    stream: &mut TcpStream,
    status: u16,
    status_text: &str,
    body: StreamBody,
) -> u64 {
    let header = format!(
        "HTTP/1.1 {status} {status_text}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    if stream.write_all(header.as_bytes()).and_then(|()| stream.flush()).is_err() {
        return 0;
    }
    let mut writer = BodyWriter { stream, bytes_out: 0, failed: false };
    body(&mut writer);
    let bytes = writer.bytes_out;
    if !writer.failed {
        let _ = writer.stream.write_all(b"0\r\n\r\n");
    }
    bytes
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    // Overloaded / shutting-down responses invite a quick retry.
    let retry = if response.status == 503 { "Retry-After: 1\r\n" } else { "" };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n{}\r\n{}",
        response.status,
        response.status_text(),
        response.body.len(),
        retry,
        response.body
    )
}

/// Tuning knobs for the serving layer (the server's `--http-threads`,
/// `--http-queue`, and `--http-timeout-ms` flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed worker-pool size.
    pub threads: usize,
    /// Bounded queue capacity between the accept loop and the workers;
    /// connections beyond it are answered `503` + `Retry-After`.
    pub queue: usize,
    /// Per-read socket timeout; a stalled client gets a `408` when it
    /// fires.
    pub read_timeout: Duration,
    /// Per-write socket timeout.
    pub write_timeout: Duration,
    /// Emit one structured log line per request to stderr.
    pub log_requests: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 8,
            queue: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            log_requests: false,
        }
    }
}

impl ServerConfig {
    /// Set both socket timeouts from one `--http-timeout-ms` value.
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout = Duration::from_millis(ms.max(1));
        self.write_timeout = self.read_timeout;
        self
    }
}

/// Monotonic serving-layer counters, shared between the server and
/// whoever renders `GET /stats`. All updates are relaxed atomics — the
/// counters are observability, not synchronization.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    /// Connections admitted to the queue.
    pub accepted: AtomicU64,
    /// Connections answered `503` at admission (queue full) or during
    /// shutdown drain.
    pub rejected: AtomicU64,
    /// Requests successfully parsed and dispatched to the handler.
    pub requests: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (including parse rejections and timeouts).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (including panics and admission rejections).
    pub responses_5xx: AtomicU64,
    /// Connections answered `408` after a socket read timeout.
    pub timeouts: AtomicU64,
    /// Handler panics converted into `500`s.
    pub panics: AtomicU64,
    /// Requests rejected at the parsing layer (`400`/`413`/`431`).
    pub parse_errors: AtomicU64,
    /// Connections dropped on unrecoverable I/O errors (no response sent).
    pub io_errors: AtomicU64,
    /// Request body bytes read.
    pub bytes_in: AtomicU64,
    /// Response body bytes written.
    pub bytes_out: AtomicU64,
    /// Total time connections spent queued, in microseconds.
    pub queue_wait_us: AtomicU64,
    /// Total time spent parsing + handling + responding, in microseconds.
    pub handle_us: AtomicU64,
}

/// A plain-integer copy of [`HttpMetrics`] at one point in time.
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpMetricsSnapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub requests: u64,
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
    pub timeouts: u64,
    pub panics: u64,
    pub parse_errors: u64,
    pub io_errors: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub queue_wait_us: u64,
    pub handle_us: u64,
}

impl HttpMetrics {
    /// A fresh, shareable counter block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn count_status(&self, status: u16) {
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        Self::add(class, 1);
    }

    /// Read every counter (relaxed; values are monotonic but mutually
    /// unsynchronized).
    pub fn snapshot(&self) -> HttpMetricsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        HttpMetricsSnapshot {
            accepted: get(&self.accepted),
            rejected: get(&self.rejected),
            requests: get(&self.requests),
            responses_2xx: get(&self.responses_2xx),
            responses_4xx: get(&self.responses_4xx),
            responses_5xx: get(&self.responses_5xx),
            timeouts: get(&self.timeouts),
            panics: get(&self.panics),
            parse_errors: get(&self.parse_errors),
            io_errors: get(&self.io_errors),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            queue_wait_us: get(&self.queue_wait_us),
            handle_us: get(&self.handle_us),
        }
    }
}

/// Answer a connection that never reaches a worker (admission rejection
/// or shutdown drain) with a lingering close: write the response, close
/// the write half, then drain whatever the client already sent so the
/// kernel sends FIN instead of RST and the client reliably sees the
/// response.
fn reject_connection(mut stream: TcpStream, response: &Response) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    if write_response(&mut stream, response).is_ok() {
        linger_close(stream);
    }
}

/// Close the write half and drain (briefly, boundedly) whatever the
/// client already sent, so closing a socket with unread input yields a
/// FIN the client can read the response through, not an RST.
fn linger_close(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    // Bounded drain: a handful of reads, each capped by the timeout.
    for _ in 0..16 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// An accepted connection waiting for a worker.
struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// State shared between the accept loop, the workers, and the handle.
struct Pool {
    queue: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    stop: AtomicBool,
}

impl Pool {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Conn>> {
        // Handlers run under catch_unwind and the lock is never held
        // across them, so poisoning is unreachable; recover regardless.
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle to a running server: its bound address, metrics, and shutdown.
pub struct ServerHandle {
    /// The address the listener bound (useful with port 0).
    pub addr: std::net::SocketAddr,
    pool: Arc<Pool>,
    metrics: Arc<HttpMetrics>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving-layer counters for this server.
    pub fn metrics(&self) -> Arc<HttpMetrics> {
        self.metrics.clone()
    }

    /// Gracefully stop with a 5-second drain deadline.
    pub fn shutdown(self) {
        self.shutdown_within(Duration::from_secs(5));
    }

    /// Stop accepting, let workers drain queued requests until `drain`
    /// elapses (whatever is still queued then gets a `503`), and join
    /// every thread. The accept loop polls, so no dummy connection is
    /// needed to unblock it and shutdown cannot hang on a full backlog.
    pub fn shutdown_within(mut self, drain: Duration) {
        self.pool.stop.store(true, Ordering::SeqCst);
        self.pool.ready.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join(); // bounded by ACCEPT_POLL
        }
        let deadline = Instant::now() + drain;
        loop {
            if self.pool.lock_queue().is_empty() {
                break;
            }
            if Instant::now() >= deadline {
                let stale: Vec<Conn> = self.pool.lock_queue().drain(..).collect();
                for conn in stale {
                    HttpMetrics::add(&self.metrics.rejected, 1);
                    self.metrics.count_status(503);
                    reject_connection(conn.stream, &Response::error(503, "server shutting down"));
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.pool.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join(); // workers exit once stopped and drained
        }
    }
}

/// Start serving on `addr` with default [`ServerConfig`] and fresh
/// metrics. See [`serve_with`].
pub fn serve<F>(addr: &str, handler: F) -> std::io::Result<ServerHandle>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    serve_with(addr, ServerConfig::default(), HttpMetrics::new(), handler)
}

/// Start serving on `addr` (e.g. `"127.0.0.1:0"`), dispatching requests
/// to `handler` on a fixed pool of `config.threads` workers fed by a
/// bounded queue. Returns once the listener is bound; the accept loop
/// and workers run on background threads until [`ServerHandle::shutdown`].
///
/// Pass the same `metrics` to the request handler (e.g. via
/// `AppState::with_http_metrics`) to surface the counters in `GET /stats`.
pub fn serve_with<F>(
    addr: &str,
    config: ServerConfig,
    metrics: Arc<HttpMetrics>,
    handler: F,
) -> std::io::Result<ServerHandle>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let pool = Arc::new(Pool {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
    });
    let handler = Arc::new(handler);
    let config = Arc::new(ServerConfig { threads: config.threads.max(1), ..config });

    let workers = (0..config.threads)
        .map(|i| {
            let pool = pool.clone();
            let config = config.clone();
            let metrics = metrics.clone();
            let handler = handler.clone();
            std::thread::Builder::new()
                .name(format!("http-worker-{i}"))
                .spawn(move || worker_loop(&pool, &config, &metrics, handler.as_ref()))
                .expect("spawn http worker")
        })
        .collect();

    let accept_thread = {
        let pool = pool.clone();
        let config = config.clone();
        let metrics = metrics.clone();
        std::thread::Builder::new()
            .name("http-accept".to_string())
            .spawn(move || accept_loop(&listener, &pool, &config, &metrics))
            .expect("spawn http accept loop")
    };

    Ok(ServerHandle { addr: bound, pool, metrics, accept_thread: Some(accept_thread), workers })
}

fn accept_loop(listener: &TcpListener, pool: &Pool, config: &ServerConfig, metrics: &HttpMetrics) {
    while !pool.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is nonblocking; make sure the accepted
                // socket is not (timeouts need blocking reads).
                let _ = stream.set_nonblocking(false);
                let mut queue = pool.lock_queue();
                if queue.len() >= config.queue {
                    drop(queue);
                    HttpMetrics::add(&metrics.rejected, 1);
                    metrics.count_status(503);
                    reject_connection(
                        stream,
                        &Response::error(503, "server overloaded, retry shortly"),
                    );
                } else {
                    HttpMetrics::add(&metrics.accepted, 1);
                    queue.push_back(Conn { stream, accepted_at: Instant::now() });
                    drop(queue);
                    pool.ready.notify_one();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn worker_loop<F>(pool: &Pool, config: &ServerConfig, metrics: &HttpMetrics, handler: &F)
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    loop {
        let conn = {
            let mut queue = pool.lock_queue();
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if pool.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) =
                    pool.ready.wait_timeout(queue, WORKER_POLL).unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        match conn {
            Some(conn) => handle_connection(conn, config, metrics, handler),
            None => return,
        }
    }
}

fn handle_connection<F>(conn: Conn, config: &ServerConfig, metrics: &HttpMetrics, handler: &F)
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    let Conn { mut stream, accepted_at } = conn;
    let queue_wait = accepted_at.elapsed();
    HttpMetrics::add(&metrics.queue_wait_us, queue_wait.as_micros() as u64);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    let started = Instant::now();
    let parsed = read_request(&mut stream);
    // On a parse failure the request bytes were (partly) left unread;
    // linger on close so the error response survives the RST the kernel
    // would otherwise send.
    let parse_failed = parsed.is_err();
    let no_label = || (String::from("-"), String::from("-"), 0usize);
    let ((method, path, bytes_in), mut response) = match parsed {
        Ok(req) => {
            HttpMetrics::add(&metrics.requests, 1);
            HttpMetrics::add(&metrics.bytes_in, req.body.len() as u64);
            let response = match catch_unwind(AssertUnwindSafe(|| handler(&req))) {
                Ok(response) => response,
                Err(_) => {
                    HttpMetrics::add(&metrics.panics, 1);
                    Response::error(500, "internal server error")
                }
            };
            ((req.method, req.path, req.body.len()), response)
        }
        Err(RequestError::Empty) => return, // clean close, nothing to answer
        Err(RequestError::Io) => {
            HttpMetrics::add(&metrics.io_errors, 1);
            return;
        }
        Err(RequestError::Timeout) => {
            HttpMetrics::add(&metrics.timeouts, 1);
            (no_label(), Response::error(408, "request timed out"))
        }
        Err(RequestError::TooLarge) => {
            HttpMetrics::add(&metrics.parse_errors, 1);
            (no_label(), Response::error(413, "request body too large"))
        }
        Err(RequestError::HeadersTooLarge) => {
            HttpMetrics::add(&metrics.parse_errors, 1);
            (no_label(), Response::error(431, "headers too large"))
        }
        Err(RequestError::Bad(reason)) => {
            HttpMetrics::add(&metrics.parse_errors, 1);
            (no_label(), Response::error(400, reason))
        }
    };

    metrics.count_status(response.status);
    let mut bytes_out = 0u64;
    match response.stream.take() {
        Some(body_fn) => {
            bytes_out =
                write_streaming(&mut stream, response.status, response.status_text(), body_fn);
            HttpMetrics::add(&metrics.bytes_out, bytes_out);
        }
        None => {
            if write_response(&mut stream, &response).is_ok() {
                bytes_out = response.body.len() as u64;
                HttpMetrics::add(&metrics.bytes_out, bytes_out);
                if parse_failed {
                    linger_close(stream);
                }
            }
        }
    }
    let handle = started.elapsed();
    HttpMetrics::add(&metrics.handle_us, handle.as_micros() as u64);
    if config.log_requests {
        eprintln!(
            "http method={} path={} status={} bytes_in={} bytes_out={} queue_ms={:.2} handler_ms={:.2}",
            method,
            path,
            response.status,
            bytes_in,
            bytes_out,
            queue_wait.as_secs_f64() * 1e3,
            handle.as_secs_f64() * 1e3,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_echo() -> ServerHandle {
        serve("127.0.0.1:0", |req| {
            Response::ok(format!(
                "{{\"method\":{:?},\"path\":{:?},\"len\":{}}}",
                req.method,
                req.path,
                req.body.len()
            ))
        })
        .expect("bind")
    }

    fn raw_request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn parses_method_path_and_body() {
        let server = start_echo();
        let out = raw_request(
            server.addr,
            "POST /ask?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        );
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("\"method\":\"POST\""));
        assert!(out.contains("\"path\":\"/ask\""), "query string stripped: {out}");
        assert!(out.contains("\"len\":4"));
        server.shutdown();
    }

    #[test]
    fn bodyless_get() {
        let server = start_echo();
        let out = raw_request(server.addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.contains("\"path\":\"/health\""));
        assert!(out.contains("\"len\":0"));
        server.shutdown();
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        let server = start_echo();
        // Only the headers are sent — the server must answer 413 from the
        // declared length alone, without waiting for body bytes.
        let out = raw_request(
            server.addr,
            &format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 10),
        );
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        assert_eq!(server.metrics().snapshot().parse_errors, 1);
        server.shutdown();
    }

    #[test]
    fn non_numeric_content_length_is_a_400() {
        let server = start_echo();
        let out =
            raw_request(server.addr, "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\nabcd");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("invalid Content-Length"), "{out}");
        server.shutdown();
    }

    #[test]
    fn conflicting_content_lengths_are_a_400() {
        let server = start_echo();
        let out = raw_request(
            server.addr,
            "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcd",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("conflicting Content-Length"), "{out}");
        // Identical duplicates stay accepted.
        let out = raw_request(
            server.addr,
            "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
        );
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        server.shutdown();
    }

    #[test]
    fn truncated_body_is_a_400() {
        let server = start_echo();
        // Fewer bytes than declared, then EOF (not a stall): the client
        // must close its write half so the server sees EOF, not silence.
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn oversized_headers_are_a_431() {
        let server = start_echo();
        let huge = format!("GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n", "j".repeat(MAX_HEADER_BYTES));
        let mut s = TcpStream::connect(server.addr).unwrap();
        // The server may respond and close before the write finishes;
        // tolerate the resulting EPIPE.
        let _ = s.write_all(huge.as_bytes());
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");
        server.shutdown();
    }

    #[test]
    fn stalled_body_times_out_with_a_408() {
        let config = ServerConfig::default().with_timeout_ms(200);
        let metrics = HttpMetrics::new();
        let server =
            serve_with("127.0.0.1:0", config, metrics, |_| Response::ok("{}".to_string())).unwrap();
        let start = Instant::now();
        let mut s = TcpStream::connect(server.addr).unwrap();
        // Headers promise 10 bytes; the body never comes.
        s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: 10\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        assert!(start.elapsed() < Duration::from_secs(3), "timeout fired late");
        assert_eq!(server.metrics().snapshot().timeouts, 1);
        server.shutdown();
    }

    #[test]
    fn panicking_handler_returns_500_and_counts() {
        let server = serve("127.0.0.1:0", |req| {
            if req.path == "/boom" {
                panic!("handler exploded");
            }
            Response::ok("{}".to_string())
        })
        .unwrap();
        let out = raw_request(server.addr, "GET /boom HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 500"), "{out}");
        assert!(out.contains("{\"error\":\"internal server error\"}"), "{out}");
        // The worker survives the panic and keeps serving.
        let out = raw_request(server.addr, "GET /fine HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        let snap = server.metrics().snapshot();
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.responses_5xx, 1);
        server.shutdown();
    }

    #[test]
    fn saturated_queue_yields_503_with_retry_after() {
        use std::sync::mpsc;
        // One worker stuck in the handler + a single queue slot: the
        // third concurrent connection must be rejected up front.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let config = ServerConfig { threads: 1, queue: 1, ..ServerConfig::default() };
        let server = serve_with("127.0.0.1:0", config, HttpMetrics::new(), move |_| {
            // Recover a poisoned lock: a panicked sibling handler must not
            // cascade into every later request on this shared channel.
            let _ = release_rx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(Duration::from_secs(5));
            Response::ok("{}".to_string())
        })
        .unwrap();
        let addr = server.addr;

        let mut occupy = Vec::new();
        // First connection: wait until its request is *in the handler*
        // (the `requests` counter ticks just before dispatch), so the
        // single worker is provably busy before the next one arrives.
        occupy.push(std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().snapshot().requests < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Second connection: fills the single queue slot.
        occupy.push(std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().snapshot().accepted < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let out = raw_request(addr, "GET /rejected HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        assert!(out.contains("Retry-After: 1"), "{out}");
        assert_eq!(server.metrics().snapshot().rejected, 1);

        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        for h in occupy {
            assert!(h.join().unwrap().starts_with("HTTP/1.1 200"));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = start_echo();
        let addr = server.addr;
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    raw_request(addr, &format!("GET /r{i} HTTP/1.1\r\n\r\n"))
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.join().unwrap();
            assert!(out.contains(&format!("/r{i}")));
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.requests, 8);
        assert_eq!(snap.responses_2xx, 8);
        server.shutdown();
    }

    #[test]
    fn streaming_response_is_chunked_with_terminal_chunk() {
        let server = serve("127.0.0.1:0", |_req| {
            Response::streaming(|w| {
                assert!(w.send("{\"n\":1}\n"));
                assert!(w.send("{\"n\":2}\n"));
            })
        })
        .unwrap();
        let out = raw_request(server.addr, "GET /s HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.contains("Transfer-Encoding: chunked"), "{out}");
        assert!(out.contains("application/x-ndjson"), "{out}");
        assert!(out.contains("{\"n\":1}"), "{out}");
        assert!(out.contains("{\"n\":2}"), "{out}");
        assert!(out.ends_with("0\r\n\r\n"), "terminal chunk present: {out:?}");
        let snap = server.metrics().snapshot();
        assert_eq!(snap.bytes_out, 16, "two 8-byte chunks counted");
        server.shutdown();
    }

    #[test]
    fn stream_writer_detects_client_disconnect() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<bool>();
        let tx = Mutex::new(tx);
        let server = serve("127.0.0.1:0", move |_req| {
            let tx = tx.lock().unwrap_or_else(|e| e.into_inner()).clone();
            Response::streaming(move |w| {
                assert!(w.send("{\"n\":1}\n"));
                let deadline = Instant::now() + Duration::from_secs(5);
                let mut gone = false;
                while !gone && Instant::now() < deadline {
                    gone = w.client_gone();
                    std::thread::sleep(Duration::from_millis(10));
                }
                let _ = tx.send(gone);
            })
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.write_all(b"GET /s HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf); // first chunk arrived
        drop(s);
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "writer saw the disconnect");
        server.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = start_echo();
        let addr = server.addr;
        server.shutdown();
        // After shutdown the port refuses or resets; either way no 200.
        let result = TcpStream::connect(addr);
        if let Ok(mut s) = result {
            let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("200 OK"), "{out}");
        }
    }

    #[test]
    fn shutdown_is_deadline_bounded() {
        // Even with traffic in flight, shutdown_within returns promptly.
        let server = start_echo();
        let start = Instant::now();
        server.shutdown_within(Duration::from_millis(500));
        assert!(start.elapsed() < Duration::from_secs(5), "shutdown hung");
    }
}
