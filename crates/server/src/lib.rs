//! # voxolap-server
//!
//! The server-side component of a web interface for voice-based OLAP —
//! the substrate behind the paper's exploratory user study (§B.2: a JEE
//! server on Heroku whose JavaScript client sent asynchronous requests;
//! "users can switch freely between the two compared vocalization methods
//! for each single query").
//!
//! A deliberately dependency-free HTTP/1.1 implementation over
//! `std::net::TcpListener` — a bounded worker pool with socket timeouts,
//! panic isolation, graceful shutdown, and per-request counters (see
//! [`http`] and DESIGN.md §10) — with a small JSON API:
//!
//! | Method & path | Body | Response |
//! |---|---|---|
//! | `GET /health` | — | `{"status":"ok"}` |
//! | `GET /stats` | — | dataset statistics |
//! | `POST /ask` | `{"question": "...", "approach": "holistic"?}` | spoken answer + planner stats |
//! | `POST /query/stream` | `{"question": "...", "approach": ...?}` | chunked NDJSON sentence stream (see DESIGN.md §11) |
//! | `POST /session/<id>/input` | `{"text": "...", "approach": ...?}` | per-session keyword command → spoken answer |
//! | `GET /session/<id>/attach` | — | `101` upgrade to a long-lived NDJSON session (see DESIGN.md §15) |
//!
//! Sessions accumulate drill-down state per id, exactly like the paper's
//! per-worker sessions; the `approach` field switches vocalization method
//! per request, enabling the Table 8 comparison workflow.

pub mod api;
pub mod http;
pub mod reactor;

pub use api::{AppState, SessionEntry, SessionStore};
pub use http::{
    serve, serve_with, BodyWriter, HttpMetrics, HttpMetricsSnapshot, Request, Response,
    ServerConfig, ServerHandle, SessionSink, SessionUpgrade, SessionVerdict, StreamBody,
};
pub use reactor::{install_shutdown_signals, raise_nofile_limit};
