//! The JSON API: questions, per-session keyword commands, statistics.
//!
//! Voice output is rendered client-side (the paper used ResponsiveVoiceJS
//! in the browser), so the server returns *text* plus planner statistics;
//! the `approach` field switches vocalization methods per request, the
//! mechanism behind the paper's Table 8 study ("users can switch freely
//! between the two compared vocalization methods for each single query").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use voxolap_json::Value;

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::Optimal;
use voxolap_core::outcome::VocalizationOutcome;
use voxolap_core::parallel::ParallelHolistic;
use voxolap_core::prior::PriorGreedy;
use voxolap_core::unmerged::{Unmerged, UnmergedConfig};
use voxolap_core::voice::{InstantVoice, VirtualVoice, VoiceOutput};
use voxolap_core::CancelToken;
use voxolap_data::stats::DatasetStats;
use voxolap_data::{DataError, DimValue, DurableTable, IngestRow, Table};
use voxolap_engine::query::Query;
use voxolap_engine::semantic::SemanticCache;
use voxolap_faults::{BreakerState, CircuitBreaker, Resilience};
use voxolap_voice::question::parse_question;
use voxolap_voice::session::{Response as SessionResponse, Session};
use voxolap_voice::tts::RealTimeVoice;

use crate::http::{HttpMetrics, Request, Response, SessionSink, SessionUpgrade, SessionVerdict};

/// Default semantic-cache budget when `--cache-mb` is not given.
const DEFAULT_CACHE_MB: usize = 64;

/// Speaking rate of the wall-clock voice pacing multi-threaded streams:
/// fast enough that a stream completes promptly, slow enough that the
/// planner genuinely samples behind each "playing" sentence.
const STREAM_CHARS_PER_SEC: f64 = 2_000.0;

/// Per-session server-side state, kept across utterances and transports
/// (the blocking `/session/<id>/input` route and the long-lived attach
/// transport share entries, so a client can reconnect and resume).
#[derive(Debug, Default, Clone)]
pub struct SessionEntry {
    /// The applied command log, replayed into a fresh [`Session`] per
    /// utterance (sessions are small — tens of commands).
    pub log: Vec<String>,
    /// Canonical scope of the last answered query, used to detect when a
    /// follow-up stays in-scope and the semantic cache will warm-start
    /// from cached sample snapshots (DESIGN.md §9).
    pub last_scope: Option<String>,
}

/// Per-session state table, keyed by session id.
pub type SessionStore = Mutex<HashMap<String, SessionEntry>>;

/// Shared application state.
pub struct AppState {
    /// Live (append-capable) revision chain of the dataset, optionally
    /// backed by a write-ahead log (DESIGN.md §17). Every request pins one
    /// snapshot for its whole run, so a query's result layout stays
    /// consistent however many `POST /ingest` batches land while it
    /// plans; the next request sees the new revision. In durable mode an
    /// ingest acknowledges only after the WAL commit lands.
    live: DurableTable,
    /// Trips on the first storage failure (fsyncgate: a failed fsync may
    /// have lost pages, so ingest stops acknowledging immediately) and
    /// probes again after a short cooldown. Queries are unaffected.
    ingest_breaker: CircuitBreaker,
    sessions: SessionStore,
    /// Planning threads used by the `parallel` approach.
    threads: usize,
    /// Cross-query semantic cache shared by all requests (`None` when
    /// disabled via `--cache-mb 0`).
    semantic: Option<Arc<SemanticCache>>,
    /// One vocalizer per approach, built on first use and reused by every
    /// subsequent request (vocalizers are stateless apart from shared
    /// caches, so one instance serves all connections).
    vocalizers: Mutex<HashMap<String, Arc<dyn Vocalizer>>>,
    /// Fault-injection + degradation policy shared by the resilient
    /// approaches (`None` unless `--fault-plan` was given; a plan-less
    /// `Resilience` still enables retry/breaker/anytime machinery).
    resilience: Option<Arc<Resilience>>,
    /// Per-query planning latencies in milliseconds, for `/stats`
    /// percentiles.
    latencies_ms: Arc<Mutex<Vec<f64>>>,
    /// Planning latencies of answers that completed degraded, reported
    /// separately under `/stats` `"degradation"`.
    planning_degraded_ms: Arc<Mutex<Vec<f64>>>,
    /// Planning latencies of answers that completed clean.
    planning_clean_ms: Arc<Mutex<Vec<f64>>>,
    /// Time-to-first-sentence samples in milliseconds, fed by both the
    /// blocking and the streaming query paths.
    ttfs_ms: Arc<Mutex<Vec<f64>>>,
    /// Gaps between consecutive planned sentences, in milliseconds.
    gap_ms: Arc<Mutex<Vec<f64>>>,
    /// Streams aborted because the client hung up mid-stream.
    stream_cancellations: Arc<AtomicU64>,
    /// Batches accepted by `POST /ingest`, for `/stats`.
    ingest_batches: AtomicU64,
    /// Rows appended by `POST /ingest`, for `/stats`.
    ingest_rows: AtomicU64,
    /// Serving-layer counters shared with the HTTP pool (`None` when the
    /// state is exercised without a real server, e.g. in unit tests).
    http_metrics: Option<Arc<HttpMetrics>>,
    /// Expose `GET /debug/panic` (panic-isolation testing).
    debug_routes: bool,
    /// `(heartbeat_ms, idle_timeout_ms)` advertised in the session
    /// transport's `hello` event — set from the serving layer's config so
    /// clients learn the cadence to expect.
    session_timing: (u64, u64),
    /// Per-utterance planning deadline on the session transport. A wide
    /// scope (say, a city-level drill-down crossed with another breakdown)
    /// can take minutes to converge; unbounded, one such utterance pins a
    /// worker and starves the pool. Past the deadline the planner commits
    /// the §12 anytime answer and the `done` event carries
    /// `"degraded":true`. `None` = run to convergence.
    utterance_deadline: Option<Duration>,
}

/// `POST /ask` body.
#[derive(Debug)]
struct AskRequest {
    question: String,
    approach: Option<String>,
}

impl AskRequest {
    fn from_body(body: &[u8]) -> Option<Self> {
        let v = Value::parse_slice(body).ok()?;
        Some(AskRequest {
            question: v["question"].as_str()?.to_string(),
            approach: v["approach"].as_str().map(str::to_string),
        })
    }
}

/// `POST /session/<id>/input` body.
#[derive(Debug)]
struct InputRequest {
    text: String,
    approach: Option<String>,
}

impl InputRequest {
    fn from_body(body: &[u8]) -> Option<Self> {
        let v = Value::parse_slice(body).ok()?;
        Some(InputRequest {
            text: v["text"].as_str()?.to_string(),
            approach: v["approach"].as_str().map(str::to_string),
        })
    }
}

/// A spoken answer.
#[derive(Debug)]
struct AnswerResponse {
    approach: String,
    text: String,
    preamble: String,
    sentences: Vec<String>,
    latency_ms: f64,
    chars: usize,
    rows_sampled: u64,
    planner_iterations: u64,
    degraded: bool,
    stale: bool,
}

impl AnswerResponse {
    fn from_outcome(approach: &str, outcome: &VocalizationOutcome) -> Self {
        AnswerResponse {
            approach: approach.to_string(),
            text: outcome.full_text(),
            preamble: outcome.preamble.clone(),
            sentences: outcome.sentences.clone(),
            latency_ms: outcome.latency.as_secs_f64() * 1e3,
            chars: outcome.body_len(),
            rows_sampled: outcome.stats.rows_read,
            planner_iterations: outcome.stats.samples,
            degraded: outcome.stats.degraded,
            stale: outcome.stats.stale,
        }
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("approach", self.approach.as_str().into()),
            ("text", self.text.as_str().into()),
            ("preamble", self.preamble.as_str().into()),
            ("sentences", self.sentences.clone().into()),
            ("latency_ms", self.latency_ms.into()),
            ("chars", self.chars.into()),
            ("rows_sampled", self.rows_sampled.into()),
            ("planner_iterations", self.planner_iterations.into()),
        ];
        // Wire-compatible with pre-resilience clients: the field appears
        // only on answers that actually degraded.
        if self.degraded {
            fields.push(("degraded", true.into()));
        }
        // Likewise only present when a version-stale cached result was
        // served (fault or deadline blocked a fresh replan).
        if self.stale {
            fields.push(("stale", true.into()));
        }
        Value::obj(fields)
    }
}

/// Build the requested vocalizer (default: holistic). The semantic cache
/// attaches to the approaches that can use it (holistic, parallel,
/// optimal).
fn make_vocalizer(
    approach: &str,
    threads: usize,
    semantic: Option<&Arc<SemanticCache>>,
    resilience: Option<&Arc<Resilience>>,
) -> Result<Box<dyn Vocalizer>, String> {
    let holistic_config = HolisticConfig {
        min_samples_per_sentence: 8_000,
        resample_size: 200,
        ..HolisticConfig::default()
    };
    match approach {
        "holistic" => {
            let mut v = Holistic::new(holistic_config);
            if let Some(cache) = semantic {
                v = v.with_cache(cache.clone());
            }
            if let Some(res) = resilience {
                v = v.with_resilience(res.clone());
            }
            Ok(Box::new(v))
        }
        // "concurrent" kept as an alias for the pre-parallel engine name.
        "parallel" | "concurrent" => {
            let mut v = ParallelHolistic::new(holistic_config).with_threads(threads);
            if let Some(cache) = semantic {
                v = v.with_cache(cache.clone());
            }
            if let Some(res) = resilience {
                v = v.with_resilience(res.clone());
            }
            Ok(Box::new(v))
        }
        "optimal" => {
            let mut v = Optimal::default();
            if let Some(cache) = semantic {
                v = v.with_cache(cache.clone());
            }
            Ok(Box::new(v))
        }
        "unmerged" => Ok(Box::new(Unmerged::new(UnmergedConfig {
            resample_size: 200,
            ..UnmergedConfig::default()
        }))),
        "prior" => Ok(Box::new(PriorGreedy)),
        other => Err(format!("unknown approach {other:?}")),
    }
}

/// The `p`-th percentile of `sorted` (nearest-rank on a pre-sorted slice).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Count + p50/p90/p99 summary of one sample vector, for `/stats`.
fn dist_json(samples: &Mutex<Vec<f64>>) -> Value {
    let mut l = samples.lock().clone();
    l.sort_by(|a, b| a.total_cmp(b));
    Value::obj([
        ("count", l.len().into()),
        ("p50", percentile(&l, 50.0).into()),
        ("p90", percentile(&l, 90.0).into()),
        ("p99", percentile(&l, 99.0).into()),
    ])
}

impl AppState {
    /// Create state over one dataset, with all cores available to the
    /// `parallel` approach and a default-sized semantic cache. Appends
    /// stay purely in memory; use [`AppState::durable`] for crash safety.
    pub fn new(table: Table) -> Self {
        Self::durable(DurableTable::memory(table))
    }

    /// Create state over an already-opened durable table (recovery runs in
    /// [`DurableTable::open`], *before* this state ever serves a request).
    pub fn durable(table: DurableTable) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        AppState {
            live: table,
            ingest_breaker: CircuitBreaker::new(1, Duration::from_millis(500)),
            sessions: Mutex::new(HashMap::new()),
            threads,
            semantic: Some(Arc::new(SemanticCache::with_capacity_mb(DEFAULT_CACHE_MB))),
            vocalizers: Mutex::new(HashMap::new()),
            resilience: None,
            latencies_ms: Arc::new(Mutex::new(Vec::new())),
            planning_degraded_ms: Arc::new(Mutex::new(Vec::new())),
            planning_clean_ms: Arc::new(Mutex::new(Vec::new())),
            ttfs_ms: Arc::new(Mutex::new(Vec::new())),
            gap_ms: Arc::new(Mutex::new(Vec::new())),
            stream_cancellations: Arc::new(AtomicU64::new(0)),
            ingest_batches: AtomicU64::new(0),
            ingest_rows: AtomicU64::new(0),
            http_metrics: None,
            debug_routes: false,
            session_timing: (15_000, 120_000),
            utterance_deadline: None,
        }
    }

    /// Advertise the session transport's heartbeat interval and idle
    /// timeout (milliseconds) in `hello` events; wire these from the
    /// [`crate::http::ServerConfig`] actually serving the state.
    pub fn with_session_timing(mut self, heartbeat_ms: u64, idle_timeout_ms: u64) -> Self {
        self.session_timing = (heartbeat_ms, idle_timeout_ms);
        self
    }

    /// Bound each session utterance's planning time: past the deadline the
    /// answer is committed through the anytime path (DESIGN.md §12) and
    /// the `done` event reports `"degraded":true`. Keeps one wide-scope
    /// utterance from monopolizing a serving worker for minutes.
    pub fn with_utterance_deadline(mut self, deadline: Duration) -> Self {
        self.utterance_deadline = Some(deadline);
        // The anytime commit and the `degraded` marking live in the
        // resilience machinery (DESIGN.md §12); an inert policy enables
        // them without injecting any faults. A deadline with no run state
        // would be a hard stop instead of an anytime answer.
        if self.resilience.is_none() {
            self.resilience = Some(Arc::new(Resilience::default()));
        }
        self
    }

    /// Override the planning-thread count used by the `parallel` approach
    /// (min 1; the server's `--threads` flag).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the semantic-cache budget in MiB (the server's `--cache-mb`
    /// flag); `0` disables cross-query caching entirely.
    pub fn with_cache_mb(mut self, mb: usize) -> Self {
        self.semantic = (mb > 0).then(|| Arc::new(SemanticCache::with_capacity_mb(mb)));
        self
    }

    /// Parse and attach a fault plan / degradation policy (the server's
    /// `--fault-plan` flag; see `voxolap_faults::Resilience::from_spec`
    /// for the spec grammar). Resilient approaches built after this call
    /// retry faulted reads, trip per-source breakers, and finish with
    /// anytime answers when the fault budget runs out.
    pub fn with_fault_plan(mut self, spec: &str) -> Result<Self, String> {
        self.resilience = Some(Arc::new(Resilience::from_spec(spec)?));
        Ok(self)
    }

    /// Attach an already-built resilience policy. The server binary uses
    /// this to share one fault injector between the durability layer
    /// (which needs it before the table opens) and the planner.
    pub fn with_resilience(mut self, resilience: Arc<Resilience>) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Attach the serving-layer counter block so `GET /stats` can report
    /// it. Pass the same `Arc` to [`crate::http::serve_with`].
    pub fn with_http_metrics(mut self, metrics: Arc<HttpMetrics>) -> Self {
        self.http_metrics = Some(metrics);
        self
    }

    /// Enable `GET /debug/panic`, a route that panics on purpose so the
    /// pool's panic isolation can be exercised end to end.
    pub fn with_debug_routes(mut self, on: bool) -> Self {
        self.debug_routes = on;
        self
    }

    /// Dispatch one request. Takes `&Arc<Self>` because the session
    /// transport parks callbacks that outlive the request (the upgraded
    /// connection keeps a handle on the state for every later utterance).
    pub fn handle(self: &Arc<Self>, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => Response::ok("{\"status\":\"ok\"}".to_string()),
            ("GET", "/stats") => {
                let table = self.live.snapshot();
                let stats = DatasetStats::of(&table);
                let body = Value::obj([
                    ("name", stats.name.as_str().into()),
                    ("dimensions", stats.dimensions.clone().into()),
                    ("rows", stats.rows.into()),
                    ("bytes", stats.bytes.into()),
                    ("version", table.version().into()),
                    ("ingest", self.ingest_json()),
                    ("cache", self.cache_json()),
                    ("latency_ms", self.latency_json()),
                    ("degradation", self.degradation_json()),
                    ("durability", self.durability_json()),
                    ("http", self.http_json()),
                    ("sessions", Value::obj([("active", self.sessions.lock().len().into())])),
                ]);
                Response::ok(body.to_string())
            }
            ("GET", "/debug/panic") if self.debug_routes => {
                panic!("debug route: deliberate handler panic")
            }
            ("POST", "/ask") => self.handle_ask(req),
            ("POST", "/ingest") => self.handle_ingest(req),
            ("POST", "/query/stream") => self.handle_query_stream(req),
            ("POST", path) => {
                match path.strip_prefix("/session/").and_then(|rest| rest.strip_suffix("/input")) {
                    Some(id) if !id.is_empty() && !id.contains('/') => {
                        self.handle_session_input(id, req)
                    }
                    _ => Response::error(404, "not found"),
                }
            }
            ("GET", path) => {
                match path.strip_prefix("/session/").and_then(|rest| rest.strip_suffix("/attach")) {
                    Some(id) if !id.is_empty() && !id.contains('/') => {
                        self.handle_session_attach(id)
                    }
                    _ => Response::error(404, "not found"),
                }
            }
            _ => Response::error(405, "method not allowed"),
        }
    }

    /// Semantic-cache counters for `/stats` (`null` when caching is off).
    fn cache_json(&self) -> Value {
        let Some(cache) = &self.semantic else { return Value::Null };
        let s = cache.stats();
        Value::obj([
            ("exact_hits", s.exact_hits.into()),
            ("warm_hits", s.warm_hits.into()),
            ("misses", s.misses.into()),
            ("admissions", s.admissions.into()),
            ("evictions", s.evictions.into()),
            ("exact_invalidations", s.exact_invalidations.into()),
            ("snapshot_repairs", s.snapshot_repairs.into()),
            ("repair_rows_read", s.repair_rows_read.into()),
            ("stale_serves", s.stale_serves.into()),
            ("bytes_used", s.bytes_used.into()),
            ("capacity_bytes", cache.capacity_bytes().into()),
        ])
    }

    /// Ingest counters for `/stats`: accepted batches and appended rows.
    fn ingest_json(&self) -> Value {
        Value::obj([
            ("batches", self.ingest_batches.load(Ordering::Relaxed).into()),
            ("rows", self.ingest_rows.load(Ordering::Relaxed).into()),
        ])
    }

    /// Degradation-ladder counters for `/stats` (`null` unless a fault
    /// plan / resilience policy is attached): how often each rung fired,
    /// plus planning-latency percentiles split degraded vs clean.
    fn degradation_json(&self) -> Value {
        let Some(res) = &self.resilience else { return Value::Null };
        let s = res.stats().snapshot();
        // Serving-layer lock recoveries (http pool) count under the same
        // stat as engine-side ones: one number answers "how often did a
        // poisoned lock get rebuilt instead of crashing something".
        let http_recoveries =
            self.http_metrics.as_ref().map_or(0, |m| m.snapshot().poison_recoveries);
        Value::obj([
            ("retries", s.retries.into()),
            ("breaker_trips", s.breaker_trips.into()),
            ("cache_fallbacks", s.cache_fallbacks.into()),
            ("poison_recoveries", (s.poison_recoveries + http_recoveries).into()),
            ("degraded_answers", s.degraded_answers.into()),
            ("clean_answers", s.clean_answers.into()),
            ("planning_ms_degraded", dist_json(&self.planning_degraded_ms)),
            ("planning_ms_clean", dist_json(&self.planning_clean_ms)),
        ])
    }

    /// Storage counters for `/stats` (`null` when the table is purely
    /// in-memory): WAL and snapshot activity, what boot recovery did, and
    /// the ingest breaker's state.
    fn durability_json(&self) -> Value {
        let Some(s) = self.live.stats() else { return Value::Null };
        Value::obj([
            ("fsync_mode", s.fsync_mode.into()),
            ("wal_bytes", s.wal_bytes.into()),
            ("wal_appends", s.wal_appends.into()),
            ("fsyncs", s.fsyncs.into()),
            ("fsync_failures", s.fsync_failures.into()),
            ("snapshots_written", s.snapshots_written.into()),
            ("snapshot_failures", s.snapshot_failures.into()),
            ("replayed_batches", s.replayed_batches.into()),
            ("replayed_rows", s.replayed_rows.into()),
            ("torn_tail_truncations", s.torn_tail_truncations.into()),
            ("clean_start", s.clean_start.into()),
            ("recovery_ms", s.recovery_ms.into()),
            ("breaker_open", (self.ingest_breaker.state() != BreakerState::Closed).into()),
            ("breaker_trips", self.ingest_breaker.trips().into()),
        ])
    }

    /// Flush and fsync the WAL and write the clean-shutdown marker; part
    /// of graceful shutdown, after the serving layer drained. A no-op for
    /// in-memory tables.
    pub fn shutdown_durability(&self) -> Result<(), DataError> {
        self.live.shutdown_clean()
    }

    /// Serving-layer counters for `/stats` (`null` when the state runs
    /// without an attached HTTP pool).
    fn http_json(&self) -> Value {
        let Some(metrics) = &self.http_metrics else { return Value::Null };
        let s = metrics.snapshot();
        Value::obj([
            ("accepted", s.accepted.into()),
            ("rejected", s.rejected.into()),
            ("requests", s.requests.into()),
            ("responses_2xx", s.responses_2xx.into()),
            ("responses_4xx", s.responses_4xx.into()),
            ("responses_5xx", s.responses_5xx.into()),
            ("timeouts", s.timeouts.into()),
            ("panics", s.panics.into()),
            ("parse_errors", s.parse_errors.into()),
            ("io_errors", s.io_errors.into()),
            ("reject_write_failures", s.reject_write_failures.into()),
            ("keepalive_reuses", s.keepalive_reuses.into()),
            ("sessions_opened", s.sessions_opened.into()),
            ("sessions_closed", s.sessions_closed.into()),
            ("session_lines", s.session_lines.into()),
            ("heartbeats_sent", s.heartbeats_sent.into()),
            ("idle_closed", s.idle_closed.into()),
            ("bytes_in", s.bytes_in.into()),
            ("bytes_out", s.bytes_out.into()),
            ("queue_wait_ms_total", (s.queue_wait_us as f64 / 1e3).into()),
            ("handler_ms_total", (s.handle_us as f64 / 1e3).into()),
            ("poison_recoveries", s.poison_recoveries.into()),
        ])
    }

    /// Look up (or lazily build) the shared vocalizer for `approach`.
    /// `"concurrent"` aliases `"parallel"` so both names share one
    /// instance.
    fn vocalizer_for(&self, approach: &str) -> Result<Arc<dyn Vocalizer>, String> {
        let key = if approach == "concurrent" { "parallel" } else { approach };
        let mut cache = self.vocalizers.lock();
        if let Some(v) = cache.get(key) {
            return Ok(Arc::clone(v));
        }
        let v: Arc<dyn Vocalizer> = Arc::from(make_vocalizer(
            key,
            self.threads,
            self.semantic.as_ref(),
            self.resilience.as_ref(),
        )?);
        cache.insert(key.to_string(), Arc::clone(&v));
        Ok(v)
    }

    /// Planning-latency percentiles over the queries served so far, plus
    /// the streaming counters (time-to-first-sentence, inter-sentence
    /// gaps, client-abort count).
    fn latency_json(&self) -> Value {
        let mut l = self.latencies_ms.lock().clone();
        l.sort_by(|a, b| a.total_cmp(b));
        Value::obj([
            ("count", l.len().into()),
            ("p50", percentile(&l, 50.0).into()),
            ("p90", percentile(&l, 90.0).into()),
            ("p99", percentile(&l, 99.0).into()),
            ("ttfs_ms", dist_json(&self.ttfs_ms)),
            ("gap_ms", dist_json(&self.gap_ms)),
            ("stream_cancellations", self.stream_cancellations.load(Ordering::Relaxed).into()),
        ])
    }

    fn record_latency(&self, outcome: &VocalizationOutcome) {
        let ms = outcome.stats.planning_time.as_secs_f64() * 1e3;
        self.latencies_ms.lock().push(ms);
        let split = if outcome.stats.degraded {
            &self.planning_degraded_ms
        } else {
            &self.planning_clean_ms
        };
        split.lock().push(ms);
    }

    /// Drain a sentence stream for a blocking endpoint, feeding the same
    /// time-to-first-sentence and gap counters as the streaming path.
    fn drive_stream(
        &self,
        vocalizer: &dyn Vocalizer,
        table: &Table,
        query: &Query,
        voice: &mut dyn VoiceOutput,
    ) -> VocalizationOutcome {
        let t0 = Instant::now();
        let mut stream = vocalizer.stream(table, query, voice, CancelToken::never());
        let mut last = t0;
        let mut first = true;
        while stream.next_sentence().is_some() {
            let now = Instant::now();
            if first {
                self.ttfs_ms.lock().push((now - t0).as_secs_f64() * 1e3);
                first = false;
            } else {
                self.gap_ms.lock().push((now - last).as_secs_f64() * 1e3);
            }
            last = now;
        }
        stream.finish()
    }

    /// `POST /ingest`: append a batch of fact rows to the live table,
    /// one NDJSON object per line:
    ///
    /// ```text
    /// {"dims": ["Kahului HI", "summer"], "values": [1.0, 0.0]}
    /// ```
    ///
    /// A string dimension value names an existing leaf member; an array
    /// is a full level-1-to-leaf phrase path, creating members missing
    /// along the way (DESIGN.md §16). The batch is atomic: any malformed
    /// line, unknown member, or arity mismatch 400s (naming the line)
    /// and the table stays on its current version. Cached results are
    /// not touched here — queries against the new version invalidate
    /// stale exact entries and repair sample snapshots lazily, scanning
    /// only the appended suffix.
    fn handle_ingest(&self, req: &Request) -> Response {
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "ingest body must be UTF-8 NDJSON");
        };
        let mut rows = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let bad = |msg: &str| Response::error(400, &format!("line {}: {msg}", no + 1));
            let Ok(v) = Value::parse(line) else {
                return bad("expected one JSON object per line");
            };
            let Some(dims) = v["dims"].as_array() else {
                return bad("rows need a \"dims\" array");
            };
            let Some(values) = v["values"].as_array() else {
                return bad("rows need a \"values\" array");
            };
            let mut row = IngestRow {
                dims: Vec::with_capacity(dims.len()),
                values: Vec::with_capacity(values.len()),
            };
            for d in dims {
                if let Some(phrase) = d.as_str() {
                    row.dims.push(DimValue::Phrase(phrase.to_string()));
                } else if let Some(path) = d.as_array() {
                    let mut steps = Vec::with_capacity(path.len());
                    for step in path {
                        let Some(s) = step.as_str() else {
                            return bad("path steps must be strings");
                        };
                        steps.push(s.to_string());
                    }
                    row.dims.push(DimValue::Path(steps));
                } else {
                    return bad("dimension values are member phrases (string) or paths (array)");
                }
            }
            for m in values {
                let Some(x) = m.as_f64() else {
                    return bad("measure values must be numbers");
                };
                row.values.push(x);
            }
            rows.push(row);
        }
        if rows.is_empty() {
            return Response::error(400, "empty ingest batch");
        }
        // fsyncgate gate: after a storage failure the breaker refuses
        // ingest outright (503 + Retry-After) until a cooldown probe gets
        // through. A poisoned WAL keeps failing probes, keeping the
        // breaker open until the operator restarts into recovery.
        if !self.ingest_breaker.allow() {
            return Response::error(503, "ingest unavailable: storage breaker open");
        }
        match self.live.append_rows(&rows) {
            Ok(report) => {
                self.ingest_breaker.on_success();
                self.ingest_batches.fetch_add(1, Ordering::Relaxed);
                self.ingest_rows.fetch_add(report.appended as u64, Ordering::Relaxed);
                Response::ok(
                    Value::obj([
                        ("appended", report.appended.into()),
                        ("version", report.version.into()),
                        ("total_rows", report.total_rows.into()),
                        ("new_members", report.new_members.into()),
                    ])
                    .to_string(),
                )
            }
            Err(e @ DataError::Wal { .. }) => {
                // The batch is NOT acknowledged: it never published and
                // (per the fsyncgate rule) is never retried here — the
                // client owns the retry, after Retry-After, against a
                // recovered process.
                self.ingest_breaker.on_failure();
                Response::error(503, &format!("ingest not durable: {e}"))
            }
            Err(e) => {
                // Validation failure — storage was never touched. If we
                // held the half-open probe slot, return it (closing the
                // breaker: with threshold 1 a still-broken disk re-trips
                // on the next real append).
                if self.ingest_breaker.state() == BreakerState::HalfOpen {
                    self.ingest_breaker.on_success();
                }
                Response::error(400, &e.to_string())
            }
        }
    }

    fn handle_ask(&self, req: &Request) -> Response {
        let Some(ask) = AskRequest::from_body(&req.body) else {
            return Response::error(400, "expected {\"question\": \"...\"}");
        };
        let approach = ask.approach.as_deref().unwrap_or("holistic");
        let vocalizer = match self.vocalizer_for(approach) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &e),
        };
        // Pin one revision for parse + plan: the query's result layout
        // must match the dictionaries it was parsed against.
        let table = self.live.snapshot();
        let query = match parse_question(table.schema(), &ask.question) {
            Ok(q) => q,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let mut voice = InstantVoice::default();
        let outcome = self.drive_stream(vocalizer.as_ref(), &table, &query, &mut voice);
        self.record_latency(&outcome);
        Response::ok(AnswerResponse::from_outcome(approach, &outcome).to_json().to_string())
    }

    /// `POST /query/stream`: plan and emit sentences incrementally as
    /// newline-delimited JSON over chunked transfer encoding, paced by a
    /// [`VirtualVoice`]. The planner keeps sampling while each sentence
    /// "plays"; a client hang-up fires the [`CancelToken`] and stops
    /// sampling within one sentence's iteration budget.
    fn handle_query_stream(&self, req: &Request) -> Response {
        let Some(ask) = AskRequest::from_body(&req.body) else {
            return Response::error(400, "expected {\"question\": \"...\"}");
        };
        let approach = ask.approach.as_deref().unwrap_or("holistic").to_string();
        let vocalizer = match self.vocalizer_for(&approach) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &e),
        };
        // One pinned revision serves the whole stream, even if ingest
        // batches land while sentences are still playing.
        let table = self.live.snapshot();
        let query = match parse_question(table.schema(), &ask.question) {
            Ok(q) => q,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let latencies = Arc::clone(&self.latencies_ms);
        let latencies_degraded = Arc::clone(&self.planning_degraded_ms);
        let latencies_clean = Arc::clone(&self.planning_clean_ms);
        let ttfs = Arc::clone(&self.ttfs_ms);
        let gaps = Arc::clone(&self.gap_ms);
        let cancellations = Arc::clone(&self.stream_cancellations);
        Response::streaming(move |w| {
            // The cooperative planners pace on a virtual voice (speaking
            // time measured in planner iterations); the multi-threaded
            // planner paces its workers on the wall clock, so it gets a
            // fast real-time voice instead.
            let mut voice: Box<dyn VoiceOutput> = if vocalizer.name() == "holistic-parallel" {
                Box::new(RealTimeVoice::new(STREAM_CHARS_PER_SEC))
            } else {
                Box::new(VirtualVoice::default())
            };
            let voice = voice.as_mut();
            let cancel = CancelToken::new();
            let t0 = Instant::now();
            let mut stream = vocalizer.stream(&table, &query, voice, cancel.clone());
            let head = Value::obj([
                ("type", "preamble".into()),
                ("text", stream.preamble().into()),
                ("latency_ms", (stream.latency().as_secs_f64() * 1e3).into()),
            ]);
            if !w.send(&format!("{head}\n")) {
                cancel.cancel();
            }
            let mut last = t0;
            let mut first = true;
            loop {
                if w.client_gone() {
                    cancel.cancel();
                }
                let Some(sentence) = stream.next_sentence() else { break };
                let now = Instant::now();
                if first {
                    ttfs.lock().push((now - t0).as_secs_f64() * 1e3);
                    first = false;
                } else {
                    gaps.lock().push((now - last).as_secs_f64() * 1e3);
                }
                last = now;
                let line = Value::obj([
                    ("type", "sentence".into()),
                    ("index", sentence.index.into()),
                    ("text", sentence.text.as_str().into()),
                    ("samples", sentence.stats.samples.into()),
                    ("rows_read", sentence.stats.rows_read.into()),
                    ("elapsed_ms", (sentence.stats.elapsed.as_secs_f64() * 1e3).into()),
                ]);
                if !w.send(&format!("{line}\n")) {
                    cancel.cancel();
                }
            }
            let cancelled = stream.is_cancelled();
            let outcome = stream.finish();
            let planning_ms = outcome.stats.planning_time.as_secs_f64() * 1e3;
            latencies.lock().push(planning_ms);
            let split = if outcome.stats.degraded { &latencies_degraded } else { &latencies_clean };
            split.lock().push(planning_ms);
            if cancelled {
                cancellations.fetch_add(1, Ordering::Relaxed);
            }
            let mut fields = vec![
                ("type", "done".into()),
                ("sentences", outcome.sentences.len().into()),
                ("samples", outcome.stats.samples.into()),
                ("rows_read", outcome.stats.rows_read.into()),
                ("planning_ms", planning_ms.into()),
                ("cancelled", cancelled.into()),
            ];
            // Wire-compatible with pre-resilience clients: present only
            // when the answer actually degraded.
            if outcome.stats.degraded {
                fields.push(("degraded", true.into()));
            }
            if outcome.stats.stale {
                fields.push(("stale", true.into()));
            }
            let done = Value::obj(fields);
            w.send(&format!("{done}\n"));
        })
    }

    fn handle_session_input(&self, id: &str, req: &Request) -> Response {
        let Some(input) = InputRequest::from_body(&req.body) else {
            return Response::error(400, "expected {\"text\": \"...\"}");
        };
        let approach = input.approach.as_deref().unwrap_or("holistic");
        let vocalizer = match self.vocalizer_for(approach) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &e),
        };

        // Replay the session's applied commands, then the new one. The
        // lock is held across vocalization to keep per-session ordering;
        // distinct sessions on distinct connections still run one request
        // at a time here (matching the paper's per-worker sessions).
        let table = self.live.snapshot();
        let mut sessions = self.sessions.lock();
        let entry = sessions.entry(id.to_string()).or_default();
        let mut session = Session::new(&table);
        for cmd in entry.log.iter() {
            let _ = session.input(cmd);
        }
        match session.input(&input.text) {
            Ok(SessionResponse::Help(text)) => {
                Response::ok(format!("{{\"help\":{}}}", voxolap_json::escape(&text)))
            }
            Ok(SessionResponse::Quit) => {
                sessions.remove(id);
                Response::ok("{\"ended\":true}".to_string())
            }
            Ok(SessionResponse::Updated) => {
                entry.log.push(input.text.clone());
                entry.last_scope = session.query().ok().map(|q| format!("{:?}", q.key().scope()));
                let mut voice = InstantVoice::default();
                // Same per-utterance bound as the session transport: past
                // the deadline the anytime answer commits, marked
                // degraded, instead of pinning this worker for minutes.
                let cancel = match self.utterance_deadline {
                    Some(d) => CancelToken::with_deadline(Instant::now() + d),
                    None => CancelToken::never(),
                };
                match session.vocalize_streaming(vocalizer.as_ref(), &mut voice, cancel, |_| {}) {
                    Ok(outcome) => {
                        self.record_latency(&outcome);
                        Response::ok(
                            AnswerResponse::from_outcome(approach, &outcome).to_json().to_string(),
                        )
                    }
                    Err(e) => Response::error(400, &e.to_string()),
                }
            }
            Err(e) => Response::error(400, &e.to_string()),
        }
    }

    /// `GET /session/<id>/attach`: upgrade the connection to the
    /// long-lived NDJSON session transport (DESIGN.md §15). The client
    /// then writes one JSON line per utterance:
    ///
    /// ```text
    /// {"type":"utter","text":"break down by region","approach":"holistic"?}
    /// {"type":"ping"}
    /// {"type":"bye"}
    /// ```
    ///
    /// and receives `hello`, `preamble`/`sentence`/`done` (one §11 speech
    /// stream per utterance), `help`, `pong`, `error`, `heartbeat`, and
    /// `bye` events. Dialogue state lives server-side under the session
    /// id, shared with `POST /session/<id>/input`, so transports can be
    /// mixed and a dropped connection can re-attach and resume.
    fn handle_session_attach(self: &Arc<Self>, id: &str) -> Response {
        // Materialize the entry so re-attach after disconnect resumes
        // rather than restarts, and /stats counts the session as active.
        self.sessions.lock().entry(id.to_string()).or_default();
        let (heartbeat_ms, idle_ms) = self.session_timing;
        let hello = Value::obj([
            ("type", "hello".into()),
            ("session", id.into()),
            ("heartbeat_ms", heartbeat_ms.into()),
            ("idle_timeout_ms", idle_ms.into()),
        ]);
        let state = Arc::clone(self);
        let line_state = Arc::clone(self);
        let line_id = id.to_string();
        Response::upgrade_session(SessionUpgrade {
            id: id.to_string(),
            hello: Some(hello.to_string()),
            on_line: Arc::new(move |line, sink| line_state.session_line(&line_id, line, sink)),
            // Dialogue state deliberately survives the connection: the
            // session can re-attach (or fall back to the POST route).
            on_close: Arc::new(move |_id| {
                let _ = &state; // keep the state alive as long as the session
            }),
        })
    }

    /// Handle one NDJSON line from an attached session connection.
    fn session_line(
        self: &Arc<Self>,
        id: &str,
        line: &str,
        sink: &mut SessionSink<'_>,
    ) -> SessionVerdict {
        let Ok(v) = Value::parse(line) else {
            sink.send_line(
                &Value::obj([
                    ("type", "error".into()),
                    ("message", "expected one JSON object per line".into()),
                ])
                .to_string(),
            );
            return SessionVerdict::Continue;
        };
        match v["type"].as_str().unwrap_or("") {
            "ping" => {
                sink.send_line("{\"type\":\"pong\"}");
                SessionVerdict::Continue
            }
            "bye" => {
                sink.send_line("{\"type\":\"bye\",\"reason\":\"client\"}");
                SessionVerdict::Close
            }
            "utter" => {
                let Some(text) = v["text"].as_str() else {
                    sink.send_line(
                        &Value::obj([
                            ("type", "error".into()),
                            ("message", "utter events need a \"text\" field".into()),
                        ])
                        .to_string(),
                    );
                    return SessionVerdict::Continue;
                };
                let approach = v["approach"].as_str().unwrap_or("holistic").to_string();
                self.session_utterance(id, text, &approach, sink)
            }
            other => {
                sink.send_line(
                    &Value::obj([
                        ("type", "error".into()),
                        ("message", format!("unknown event type {other:?}").as_str().into()),
                    ])
                    .to_string(),
                );
                SessionVerdict::Continue
            }
        }
    }

    /// Run one utterance through the dialogue machine and stream the
    /// resulting speech events onto the session connection.
    fn session_utterance(
        &self,
        id: &str,
        text: &str,
        approach: &str,
        sink: &mut SessionSink<'_>,
    ) -> SessionVerdict {
        let send_error = |sink: &mut SessionSink<'_>, message: &str| {
            sink.send_line(
                &Value::obj([("type", "error".into()), ("message", message.into())]).to_string(),
            );
        };
        let vocalizer = match self.vocalizer_for(approach) {
            Ok(v) => v,
            Err(e) => {
                send_error(sink, &e);
                return SessionVerdict::Continue;
            }
        };
        // Snapshot the dialogue state, then release the lock for the
        // whole vocalization: one global lock must not serialize planning
        // across thousands of concurrent sessions. Per-session ordering
        // still holds — a session's connection carries one line at a time.
        let (log, last_scope) = {
            let mut sessions = self.sessions.lock();
            let entry = sessions.entry(id.to_string()).or_default();
            (entry.log.clone(), entry.last_scope.clone())
        };
        let table = self.live.snapshot();
        let mut session = Session::new(&table);
        for cmd in log.iter() {
            let _ = session.input(cmd);
        }
        match session.input(text) {
            Ok(SessionResponse::Help(help)) => {
                sink.send_line(
                    &Value::obj([("type", "help".into()), ("text", help.as_str().into())])
                        .to_string(),
                );
                SessionVerdict::Continue
            }
            Ok(SessionResponse::Quit) => {
                self.sessions.lock().remove(id);
                sink.send_line("{\"type\":\"bye\",\"reason\":\"quit\"}");
                SessionVerdict::Close
            }
            Ok(SessionResponse::Updated) => {
                let scope = session.query().ok().map(|q| format!("{:?}", q.key().scope()));
                // An in-scope follow-up (same measure + filters, e.g. a
                // different breakdown) warm-starts from cached samples.
                let scope_warm = scope.is_some() && scope == last_scope && self.semantic.is_some();
                let t0 = Instant::now();
                let mut first_sentence_ms: Option<f64> = None;
                let mut voice = InstantVoice::default();
                let cancel = match self.utterance_deadline {
                    Some(d) => CancelToken::with_deadline(t0 + d),
                    None => CancelToken::new(),
                };
                let outcome = {
                    use voxolap_voice::session::StreamEvent;
                    session.vocalize_streaming(
                        vocalizer.as_ref(),
                        &mut voice,
                        cancel.clone(),
                        |event| match event {
                            StreamEvent::Preamble(preamble) => {
                                sink.send_line(
                                    &Value::obj([
                                        ("type", "preamble".into()),
                                        ("text", preamble.into()),
                                    ])
                                    .to_string(),
                                );
                            }
                            StreamEvent::Sentence(sentence) => {
                                if first_sentence_ms.is_none() {
                                    first_sentence_ms = Some(t0.elapsed().as_secs_f64() * 1e3);
                                }
                                if !sink.send_line(
                                    &Value::obj([
                                        ("type", "sentence".into()),
                                        ("index", sentence.index.into()),
                                        ("text", sentence.text.as_str().into()),
                                        ("samples", sentence.stats.samples.into()),
                                    ])
                                    .to_string(),
                                ) {
                                    cancel.cancel();
                                }
                            }
                        },
                    )
                };
                match outcome {
                    Ok(outcome) => {
                        self.record_latency(&outcome);
                        let ttfs = first_sentence_ms.unwrap_or(0.0);
                        self.ttfs_ms.lock().push(ttfs);
                        {
                            let mut sessions = self.sessions.lock();
                            let entry = sessions.entry(id.to_string()).or_default();
                            entry.log.push(text.to_string());
                            entry.last_scope = scope;
                        }
                        let mut done = vec![
                            ("type", "done".into()),
                            ("sentences", outcome.sentences.len().into()),
                            ("samples", outcome.stats.samples.into()),
                            ("rows_read", outcome.stats.rows_read.into()),
                            (
                                "planning_ms",
                                (outcome.stats.planning_time.as_secs_f64() * 1e3).into(),
                            ),
                            ("ttfs_ms", ttfs.into()),
                            ("scope_warm", scope_warm.into()),
                        ];
                        // Mirror `/ask`: the field appears only on answers
                        // that were cut short (deadline → anytime path).
                        if outcome.stats.degraded {
                            done.push(("degraded", true.into()));
                        }
                        if outcome.stats.stale {
                            done.push(("stale", true.into()));
                        }
                        sink.send_line(&Value::obj(done).to_string());
                        SessionVerdict::Continue
                    }
                    Err(e) => {
                        send_error(sink, &e.to_string());
                        SessionVerdict::Continue
                    }
                }
            }
            Err(e) => {
                send_error(sink, &e.to_string());
                SessionVerdict::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::flights::FlightsConfig;

    fn raw_state() -> AppState {
        AppState::new(FlightsConfig { rows: 8_000, seed: 42 }.generate())
    }

    fn state() -> Arc<AppState> {
        Arc::new(raw_state())
    }

    fn post(state: &Arc<AppState>, path: &str, body: &str) -> Response {
        state.handle(&Request::new("POST", path, body.as_bytes()))
    }

    fn get(state: &Arc<AppState>, path: &str) -> Response {
        state.handle(&Request::new("GET", path, &[]))
    }

    #[test]
    fn health_and_stats() {
        let s = state();
        assert_eq!(get(&s, "/health").body, "{\"status\":\"ok\"}");
        let stats = get(&s, "/stats");
        assert_eq!(stats.status, 200);
        assert!(stats.body.contains("\"rows\":8000"), "{}", stats.body);
    }

    #[test]
    fn stats_exposes_cache_counters_and_latency_percentiles() {
        let s = state();
        let ask =
            "{\"question\": \"cancellation probability by season\", \"approach\": \"optimal\"}";
        assert_eq!(post(&s, "/ask", ask).status, 200);
        // The identical repeat is served from the semantic cache.
        assert_eq!(post(&s, "/ask", ask).status, 200);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert_eq!(stats["cache"]["exact_hits"].as_u64().unwrap(), 1, "{stats:?}");
        assert_eq!(stats["cache"]["misses"].as_u64().unwrap(), 1);
        assert_eq!(stats["cache"]["admissions"].as_u64().unwrap(), 1);
        assert!(stats["cache"]["capacity_bytes"].as_u64().unwrap() > 0);
        assert_eq!(stats["latency_ms"]["count"].as_u64().unwrap(), 2);
        assert!(stats["latency_ms"]["p50"].as_f64().unwrap() >= 0.0);
        assert!(
            stats["latency_ms"]["p99"].as_f64().unwrap()
                >= stats["latency_ms"]["p50"].as_f64().unwrap()
        );
    }

    #[test]
    fn cache_mb_zero_disables_the_semantic_cache() {
        let s = Arc::new(raw_state().with_cache_mb(0));
        let ask =
            "{\"question\": \"cancellation probability by season\", \"approach\": \"optimal\"}";
        assert_eq!(post(&s, "/ask", ask).status, 200);
        assert_eq!(post(&s, "/ask", ask).status, 200);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert!(stats["cache"].is_null(), "{stats:?}");
    }

    #[test]
    fn ask_returns_spoken_answer() {
        let s = state();
        let r = post(
            &s,
            "/ask",
            "{\"question\": \"how does the cancellation probability depend on region and season?\"}",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert!(v["text"].as_str().unwrap().contains("cancellation probability"));
        assert_eq!(v["approach"], "holistic");
        assert!(v["latency_ms"].as_f64().unwrap() < 500.0);
    }

    #[test]
    fn ask_with_prior_approach() {
        let s = state();
        let r = post(
            &s,
            "/ask",
            "{\"question\": \"cancellation probability by season\", \"approach\": \"prior\"}",
        );
        assert_eq!(r.status, 200);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["approach"], "prior");
    }

    #[test]
    fn ask_with_parallel_approach() {
        let s = Arc::new(raw_state().with_threads(2));
        let r = post(
            &s,
            "/ask",
            "{\"question\": \"cancellation probability by season\", \"approach\": \"parallel\"}",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["approach"], "parallel");
        assert!(v["text"].as_str().unwrap().contains("cancellation probability"));
    }

    #[test]
    fn session_accumulates_state() {
        let s = state();
        let r1 = post(&s, "/session/w1/input", "{\"text\": \"break down by region\"}");
        assert_eq!(r1.status, 200, "{}", r1.body);
        let r2 = post(&s, "/session/w1/input", "{\"text\": \"break down by season\"}");
        let v = Value::parse(&r2.body).unwrap();
        assert!(v["preamble"].as_str().unwrap().contains("region and season"), "{}", r2.body);
        // A different session starts fresh.
        let r3 = post(&s, "/session/w2/input", "{\"text\": \"break down by season\"}");
        let v = Value::parse(&r3.body).unwrap();
        assert!(!v["preamble"].as_str().unwrap().contains("region and"));
    }

    #[test]
    fn session_help_and_quit() {
        let s = state();
        let help = post(&s, "/session/w1/input", "{\"text\": \"help\"}");
        assert!(help.body.contains("\"help\""));
        let quit = post(&s, "/session/w1/input", "{\"text\": \"quit\"}");
        assert!(quit.body.contains("\"ended\":true"));
    }

    #[test]
    fn stats_http_section_reflects_attached_metrics() {
        // Without an attached pool the section is null…
        let s = state();
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert!(stats["http"].is_null(), "{stats:?}");
        // …and with one it mirrors the shared counters.
        let metrics = HttpMetrics::new();
        metrics.requests.fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        metrics.panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let s = Arc::new(raw_state().with_http_metrics(metrics));
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert_eq!(stats["http"]["requests"].as_u64().unwrap(), 3, "{stats:?}");
        assert_eq!(stats["http"]["panics"].as_u64().unwrap(), 1);
    }

    #[test]
    fn debug_panic_route_is_off_by_default() {
        let s = state();
        assert_eq!(get(&s, "/debug/panic").status, 404);
    }

    #[test]
    #[should_panic(expected = "deliberate handler panic")]
    fn debug_panic_route_panics_when_enabled() {
        let s = Arc::new(raw_state().with_debug_routes(true));
        let _ = get(&s, "/debug/panic");
    }

    #[test]
    fn vocalizers_are_cached_per_approach() {
        let s = state();
        let a = s.vocalizer_for("holistic").unwrap();
        let b = s.vocalizer_for("holistic").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the instance");
        // The legacy alias shares the parallel vocalizer.
        let p = s.vocalizer_for("parallel").unwrap();
        let c = s.vocalizer_for("concurrent").unwrap();
        assert!(Arc::ptr_eq(&p, &c));
        assert!(s.vocalizer_for("quantum").is_err());
    }

    #[test]
    fn stats_reports_streaming_counters() {
        let s = state();
        let ask = "{\"question\": \"cancellation probability by region and season\"}";
        assert_eq!(post(&s, "/ask", ask).status, 200);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        let planning = &stats["latency_ms"];
        assert_eq!(planning["ttfs_ms"]["count"].as_u64().unwrap(), 1, "{stats:?}");
        assert!(planning["ttfs_ms"]["p50"].as_f64().unwrap() >= 0.0);
        assert!(planning["gap_ms"]["count"].as_u64().unwrap() >= 1, "{stats:?}");
        assert_eq!(planning["stream_cancellations"].as_u64().unwrap(), 0);
    }

    #[test]
    fn query_stream_route_returns_a_streaming_response() {
        let s = state();
        let r = post(&s, "/query/stream", "{\"question\": \"cancellation probability by season\"}");
        assert_eq!(r.status, 200);
        assert!(r.stream.is_some(), "must be a chunked streaming response");
        // Malformed bodies and unknown approaches fail fast, pre-stream.
        assert_eq!(post(&s, "/query/stream", "not json").status, 400);
        let bad = "{\"question\": \"by season\", \"approach\": \"quantum\"}";
        assert_eq!(post(&s, "/query/stream", bad).status, 400);
    }

    #[test]
    fn fault_plan_degrades_answers_and_stats_report_the_ladder() {
        let s = Arc::new(
            raw_state().with_fault_plan("seed=7,read=1.0,breaker=2,cooldown_ms=60000").unwrap(),
        );
        let r = post(&s, "/ask", "{\"question\": \"cancellation probability by season\"}");
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["degraded"].as_bool(), Some(true), "{}", r.body);
        assert!(v["text"].as_str().unwrap().contains("No data"), "{}", r.body);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        let d = &stats["degradation"];
        assert!(d["retries"].as_u64().unwrap() >= 1, "{stats:?}");
        assert!(d["breaker_trips"].as_u64().unwrap() >= 1, "{stats:?}");
        assert!(d["cache_fallbacks"].as_u64().unwrap() >= 1, "{stats:?}");
        assert_eq!(d["degraded_answers"].as_u64().unwrap(), 1, "{stats:?}");
        assert_eq!(d["clean_answers"].as_u64().unwrap(), 0, "{stats:?}");
        assert_eq!(d["planning_ms_degraded"]["count"].as_u64().unwrap(), 1, "{stats:?}");
        assert_eq!(d["planning_ms_clean"]["count"].as_u64().unwrap(), 0, "{stats:?}");
    }

    #[test]
    fn fault_free_plan_counts_clean_answers_and_omits_degraded_field() {
        // A plan with a seed but no fault sites: the resilience machinery
        // is live yet every answer completes clean.
        let s = Arc::new(raw_state().with_fault_plan("seed=1").unwrap());
        let r = post(&s, "/ask", "{\"question\": \"cancellation probability by season\"}");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(!r.body.contains("\"degraded\""), "{}", r.body);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        let d = &stats["degradation"];
        assert_eq!(d["degraded_answers"].as_u64().unwrap(), 0, "{stats:?}");
        assert_eq!(d["clean_answers"].as_u64().unwrap(), 1, "{stats:?}");
        assert_eq!(d["planning_ms_clean"]["count"].as_u64().unwrap(), 1, "{stats:?}");
    }

    #[test]
    fn stats_degradation_is_null_without_a_fault_plan() {
        let s = state();
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert!(stats["degradation"].is_null(), "{stats:?}");
        // And a malformed spec is rejected up front.
        assert!(raw_state().with_fault_plan("read=not-a-prob").is_err());
    }

    /// One NDJSON ingest line that clones `row` of the pinned table, so
    /// tests can append rows that are valid under the flights schema.
    fn echo_line(table: &Table, row: usize) -> String {
        use voxolap_data::schema::{DimId, MeasureId};
        let schema = table.schema();
        let dims: Vec<Value> = (0..schema.dimensions().len())
            .map(|d| {
                let id = DimId(d as u8);
                schema.dimension(id).member(table.member_at(id, row)).phrase.as_str().into()
            })
            .collect();
        let values: Vec<Value> = (0..schema.measures().len())
            .map(|m| table.measure_value(MeasureId(m as u8), row).into())
            .collect();
        Value::obj([("dims", Value::Array(dims)), ("values", Value::Array(values))]).to_string()
    }

    #[test]
    fn ingest_appends_rows_and_bumps_version() {
        let s = state();
        let table = s.live.snapshot();
        let batch = format!("{}\n{}\n", echo_line(&table, 0), echo_line(&table, 1));
        let r = post(&s, "/ingest", &batch);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["appended"].as_u64(), Some(2), "{}", r.body);
        assert_eq!(v["version"].as_u64(), Some(1));
        assert_eq!(v["total_rows"].as_u64(), Some(8_002));
        assert_eq!(v["new_members"].as_u64(), Some(0));
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert_eq!(stats["rows"].as_u64(), Some(8_002), "{stats:?}");
        assert_eq!(stats["version"].as_u64(), Some(1));
        assert_eq!(stats["ingest"]["batches"].as_u64(), Some(1));
        assert_eq!(stats["ingest"]["rows"].as_u64(), Some(2));
    }

    #[test]
    fn ingest_rejects_bad_batches_atomically() {
        let s = state();
        let table = s.live.snapshot();
        // Malformed second line: the error names it, nothing is applied.
        let batch = format!("{}\nnot json\n", echo_line(&table, 0));
        let r = post(&s, "/ingest", &batch);
        assert_eq!(r.status, 400);
        assert!(r.body.contains("line 2"), "{}", r.body);
        // Unknown member phrase: rejected by the dictionary, atomically.
        let r = post(&s, "/ingest", "{\"dims\": [\"Atlantis\"], \"values\": [1.0]}");
        assert_eq!(r.status, 400, "{}", r.body);
        // Empty batches are refused too.
        assert_eq!(post(&s, "/ingest", "\n\n").status, 400);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert_eq!(stats["version"].as_u64(), Some(0), "{stats:?}");
        assert_eq!(stats["rows"].as_u64(), Some(8_000));
        assert_eq!(stats["ingest"]["batches"].as_u64(), Some(0));
    }

    #[test]
    fn append_invalidates_exact_answers_and_repairs_snapshots() {
        let s = state();
        let ask = "{\"question\": \"cancellation probability by season\"}";
        assert_eq!(post(&s, "/ask", ask).status, 200);
        let table = s.live.snapshot();
        let batch: String = (0..6).map(|r| format!("{}\n", echo_line(&table, r))).collect();
        assert_eq!(post(&s, "/ingest", &batch).status, 200);
        // The repeat is no longer an exact hit: the entry is version-stale,
        // so the planner invalidates it and replans, repairing the cached
        // sample snapshot by scanning only the 6 appended rows.
        let r = post(&s, "/ask", ask);
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(!r.body.contains("\"stale\""), "{}", r.body);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        let cache = &stats["cache"];
        assert_eq!(cache["exact_invalidations"].as_u64(), Some(1), "{stats:?}");
        assert!(cache["snapshot_repairs"].as_u64().unwrap() >= 1, "{stats:?}");
        assert!(cache["repair_rows_read"].as_u64().unwrap() >= 6, "{stats:?}");
        assert_eq!(cache["stale_serves"].as_u64(), Some(0), "{stats:?}");
        // Same question again, no append in between: exact hit.
        assert_eq!(post(&s, "/ask", ask).status, 200);
        let stats = Value::parse(&get(&s, "/stats").body).unwrap();
        assert_eq!(stats["cache"]["exact_hits"].as_u64(), Some(1), "{stats:?}");
    }

    #[test]
    fn bad_requests_get_400s() {
        let s = state();
        assert_eq!(post(&s, "/ask", "not json").status, 400);
        assert_eq!(post(&s, "/ask", "{\"question\": \"gibberish xyz\"}").status, 400);
        assert_eq!(
            post(&s, "/ask", "{\"question\": \"by region\", \"approach\": \"quantum\"}").status,
            400
        );
        assert_eq!(post(&s, "/session/w1/input", "{\"text\": \"make me a sandwich\"}").status, 400);
        assert_eq!(post(&s, "/session//input", "{\"text\": \"help\"}").status, 404);
        assert_eq!(get(&s, "/nope").status, 404);
    }
}
