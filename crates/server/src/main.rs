//! `voxolap-server` — serve the JSON API for voice-based OLAP.
//!
//! ```text
//! voxolap-server [--port 8080] [--data flights|salary] [--rows N]
//!                [--scale-rows N] [--threads N] [--cache-mb N]
//!                [--fault-plan SPEC] [--http-threads N] [--http-queue N]
//!                [--http-timeout-ms N] [--http-idle-ms N] [--max-conns N]
//!                [--session-idle-ms N] [--heartbeat-ms N] [--no-keep-alive]
//!                [--utterance-deadline-ms N]
//! ```
//!
//! `--scale-rows` selects the paper-scale synthetic scale-up (5.3M–50M
//! flights rows) and takes precedence over `--rows`.
//!
//! `--threads` bounds the planning threads used by the `parallel`
//! approach (default: all cores). `--cache-mb` sizes the cross-query
//! semantic cache shared by all requests (default 64; `0` disables it).
//! `--fault-plan` attaches a deterministic fault-injection schedule plus
//! degradation policy (e.g. `seed=7,read=0.2,budget=64`; DESIGN.md §12);
//! degraded answers carry `"degraded":true` and `GET /stats` gains a
//! `"degradation"` section.
//!
//! The serving layer is an epoll reactor feeding a bounded worker pool
//! (DESIGN.md §15): `--http-threads` sets the pool size (default 8),
//! `--http-queue` the pending-request queue capacity beyond which
//! clients get `503` + `Retry-After` (default 64), `--http-timeout-ms`
//! the stalled-request timeout before a `408` (default 5000),
//! `--http-idle-ms` how long a parked keep-alive connection may idle
//! (default 30000), `--max-conns` the open-connection cap, and
//! `--no-keep-alive` restores close-per-response. Long-lived session
//! connections (`GET /session/<id>/attach`, NDJSON both ways) heartbeat
//! every `--heartbeat-ms` (default 15000) and are reaped after
//! `--session-idle-ms` of silence (default 120000).
//! `--utterance-deadline-ms` bounds each session utterance's planning
//! time — past it the answer is committed through the §12 anytime path
//! with `"degraded":true` (default: run to convergence), keeping one
//! wide-scope utterance from pinning a serving worker. Each request is
//! logged to stderr with its status, byte counts, queue wait, and
//! handler latency; the same counters are served under `"http"` in
//! `GET /stats`.
//!
//! Then:
//!
//! ```text
//! curl -s localhost:8080/health
//! curl -s localhost:8080/stats
//! curl -s -X POST localhost:8080/ask \
//!   -d '{"question": "how does the cancellation probability depend on region and season?"}'
//! curl -s -X POST localhost:8080/session/worker7/input \
//!   -d '{"text": "break down by region", "approach": "prior"}'
//! ```

use std::sync::Arc;

use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_server::{serve_with, AppState, HttpMetrics, ServerConfig};

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let port: u16 = arg("--port").and_then(|v| v.parse().ok()).unwrap_or(8080);
    let rows: usize = arg("--scale-rows")
        .or_else(|| arg("--rows"))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let data = arg("--data").unwrap_or_else(|| "flights".to_string());

    let mut config = ServerConfig { log_requests: true, ..ServerConfig::default() };
    if let Some(n) = arg("--http-threads").and_then(|v| v.parse().ok()) {
        config.threads = n;
    }
    if let Some(n) = arg("--http-queue").and_then(|v| v.parse().ok()) {
        config.queue = n;
    }
    if let Some(ms) = arg("--http-timeout-ms").and_then(|v| v.parse().ok()) {
        config = config.with_timeout_ms(ms);
    }
    if let Some(ms) = arg("--http-idle-ms").and_then(|v| v.parse().ok()) {
        config.idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = arg("--session-idle-ms").and_then(|v| v.parse().ok()) {
        config.session_idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = arg("--heartbeat-ms").and_then(|v| v.parse().ok()) {
        config.heartbeat = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = arg("--max-conns").and_then(|v| v.parse().ok()) {
        config.max_connections = n;
    }
    if std::env::args().any(|a| a == "--no-keep-alive") {
        config.keep_alive = false;
    }
    // Thousands of parked sessions need thousands of fds; the default
    // soft limit is often 1024.
    let fd_limit = voxolap_server::raise_nofile_limit();

    let table = match data.as_str() {
        "salary" => SalaryConfig::paper_scale().generate(),
        _ => {
            eprintln!("generating flights dataset ({rows} rows)...");
            FlightsConfig { rows, seed: 42 }.generate()
        }
    };
    let metrics = HttpMetrics::new();
    let mut state = AppState::new(table).with_http_metrics(metrics.clone()).with_session_timing(
        config.heartbeat.as_millis() as u64,
        config.session_idle_timeout.as_millis() as u64,
    );
    if let Some(threads) = arg("--threads").and_then(|v| v.parse().ok()) {
        state = state.with_threads(threads);
    }
    if let Some(ms) = arg("--utterance-deadline-ms").and_then(|v| v.parse().ok()) {
        state = state.with_utterance_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(mb) = arg("--cache-mb").and_then(|v| v.parse().ok()) {
        state = state.with_cache_mb(mb);
    }
    if let Some(spec) = arg("--fault-plan") {
        state = match state.with_fault_plan(&spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        eprintln!("fault plan attached: {spec}");
    }
    let state = Arc::new(state);

    let handle = serve_with(&format!("127.0.0.1:{port}"), config.clone(), metrics, move |req| {
        state.handle(req)
    })
    .expect("bind server port");
    eprintln!(
        "voxolap-server listening on http://{} (workers={} queue={} timeout={}ms keep_alive={} fd_limit={})",
        handle.addr,
        config.threads,
        config.queue,
        config.read_timeout.as_millis(),
        config.keep_alive,
        fd_limit,
    );
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
