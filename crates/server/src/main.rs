//! `voxolap-server` — serve the JSON API for voice-based OLAP.
//!
//! ```text
//! voxolap-server [--port 8080] [--data flights|salary] [--rows N] [--threads N] [--cache-mb N]
//! ```
//!
//! `--threads` bounds the planning threads used by the `parallel`
//! approach (default: all cores). `--cache-mb` sizes the cross-query
//! semantic cache shared by all requests (default 64; `0` disables it).
//!
//! Then:
//!
//! ```text
//! curl -s localhost:8080/health
//! curl -s localhost:8080/stats
//! curl -s -X POST localhost:8080/ask \
//!   -d '{"question": "how does the cancellation probability depend on region and season?"}'
//! curl -s -X POST localhost:8080/session/worker7/input \
//!   -d '{"text": "break down by region", "approach": "prior"}'
//! ```

use std::sync::Arc;

use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_server::{serve, AppState};

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let port: u16 = arg("--port").and_then(|v| v.parse().ok()).unwrap_or(8080);
    let rows: usize = arg("--rows").and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let data = arg("--data").unwrap_or_else(|| "flights".to_string());

    let table = match data.as_str() {
        "salary" => SalaryConfig::paper_scale().generate(),
        _ => {
            eprintln!("generating flights dataset ({rows} rows)...");
            FlightsConfig { rows, seed: 42 }.generate()
        }
    };
    let mut state = AppState::new(table);
    if let Some(threads) = arg("--threads").and_then(|v| v.parse().ok()) {
        state = state.with_threads(threads);
    }
    if let Some(mb) = arg("--cache-mb").and_then(|v| v.parse().ok()) {
        state = state.with_cache_mb(mb);
    }
    let state = Arc::new(state);

    let handle = serve(&format!("127.0.0.1:{port}"), move |req| state.handle(req))
        .expect("bind server port");
    eprintln!("voxolap-server listening on http://{}", handle.addr);
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
