//! `voxolap-server` — serve the JSON API for voice-based OLAP.
//!
//! ```text
//! voxolap-server [--port 8080] [--data flights|salary] [--rows N]
//!                [--scale-rows N] [--threads N] [--cache-mb N]
//!                [--fault-plan SPEC] [--http-threads N] [--http-queue N]
//!                [--http-timeout-ms N] [--http-idle-ms N] [--max-conns N]
//!                [--session-idle-ms N] [--heartbeat-ms N] [--no-keep-alive]
//!                [--utterance-deadline-ms N] [--data-dir PATH]
//!                [--fsync-mode always|batch|off] [--snapshot-every N]
//!                [--shutdown-drain-ms N]
//! ```
//!
//! `--data-dir` makes ingest crash-safe (DESIGN.md §17): acknowledged
//! batches are committed to a write-ahead log in that directory before
//! they become visible, periodically compacted into snapshot files, and
//! recovered on boot — *before* the listener accepts its first
//! connection. `--fsync-mode` picks the log's durability/throughput
//! trade (default `batch` group-commit), `--snapshot-every` the
//! compaction interval in batches (default 32, `0` disables). On
//! `SIGTERM`/`SIGINT` the server drains in-flight requests (bounded by
//! `--shutdown-drain-ms`, default 2000), flushes + fsyncs the WAL, and
//! writes a clean-shutdown marker so the next boot skips tail scanning.
//! Without `--data-dir` the table is purely in-memory, exactly as
//! before.
//!
//! `--scale-rows` selects the paper-scale synthetic scale-up (5.3M–50M
//! flights rows) and takes precedence over `--rows`.
//!
//! `--threads` bounds the planning threads used by the `parallel`
//! approach (default: all cores). `--cache-mb` sizes the cross-query
//! semantic cache shared by all requests (default 64; `0` disables it).
//! `--fault-plan` attaches a deterministic fault-injection schedule plus
//! degradation policy (e.g. `seed=7,read=0.2,budget=64`; DESIGN.md §12);
//! degraded answers carry `"degraded":true` and `GET /stats` gains a
//! `"degradation"` section.
//!
//! The serving layer is an epoll reactor feeding a bounded worker pool
//! (DESIGN.md §15): `--http-threads` sets the pool size (default 8),
//! `--http-queue` the pending-request queue capacity beyond which
//! clients get `503` + `Retry-After` (default 64), `--http-timeout-ms`
//! the stalled-request timeout before a `408` (default 5000),
//! `--http-idle-ms` how long a parked keep-alive connection may idle
//! (default 30000), `--max-conns` the open-connection cap, and
//! `--no-keep-alive` restores close-per-response. Long-lived session
//! connections (`GET /session/<id>/attach`, NDJSON both ways) heartbeat
//! every `--heartbeat-ms` (default 15000) and are reaped after
//! `--session-idle-ms` of silence (default 120000).
//! `--utterance-deadline-ms` bounds each session utterance's planning
//! time — past it the answer is committed through the §12 anytime path
//! with `"degraded":true` (default: run to convergence), keeping one
//! wide-scope utterance from pinning a serving worker. Each request is
//! logged to stderr with its status, byte counts, queue wait, and
//! handler latency; the same counters are served under `"http"` in
//! `GET /stats`.
//!
//! Then:
//!
//! ```text
//! curl -s localhost:8080/health
//! curl -s localhost:8080/stats
//! curl -s -X POST localhost:8080/ask \
//!   -d '{"question": "how does the cancellation probability depend on region and season?"}'
//! curl -s -X POST localhost:8080/session/worker7/input \
//!   -d '{"text": "break down by region", "approach": "prior"}'
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::{DurabilityOptions, DurableTable, FsyncMode};
use voxolap_faults::Resilience;
use voxolap_server::{serve_with, AppState, HttpMetrics, ServerConfig};

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let port: u16 = arg("--port").and_then(|v| v.parse().ok()).unwrap_or(8080);
    let rows: usize = arg("--scale-rows")
        .or_else(|| arg("--rows"))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let data = arg("--data").unwrap_or_else(|| "flights".to_string());

    let mut config = ServerConfig { log_requests: true, ..ServerConfig::default() };
    if let Some(n) = arg("--http-threads").and_then(|v| v.parse().ok()) {
        config.threads = n;
    }
    if let Some(n) = arg("--http-queue").and_then(|v| v.parse().ok()) {
        config.queue = n;
    }
    if let Some(ms) = arg("--http-timeout-ms").and_then(|v| v.parse().ok()) {
        config = config.with_timeout_ms(ms);
    }
    if let Some(ms) = arg("--http-idle-ms").and_then(|v| v.parse().ok()) {
        config.idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = arg("--session-idle-ms").and_then(|v| v.parse().ok()) {
        config.session_idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = arg("--heartbeat-ms").and_then(|v| v.parse().ok()) {
        config.heartbeat = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = arg("--max-conns").and_then(|v| v.parse().ok()) {
        config.max_connections = n;
    }
    if std::env::args().any(|a| a == "--no-keep-alive") {
        config.keep_alive = false;
    }
    // Thousands of parked sessions need thousands of fds; the default
    // soft limit is often 1024.
    let fd_limit = voxolap_server::raise_nofile_limit();

    let table = match data.as_str() {
        "salary" => SalaryConfig::paper_scale().generate(),
        _ => {
            eprintln!("generating flights dataset ({rows} rows)...");
            FlightsConfig { rows, seed: 42 }.generate()
        }
    };

    // The fault plan is parsed before the durable table opens so the
    // storage sites (wal/fsync/snap) share the planner's injector.
    let resilience = arg("--fault-plan").map(|spec| {
        match Resilience::from_spec(&spec) {
            Ok(r) => {
                eprintln!("fault plan attached: {spec}");
                Arc::new(r)
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    });

    // Recovery runs here, before the listener exists: no request can
    // observe a partially recovered table.
    let durable = match arg("--data-dir") {
        Some(dir) => {
            let fsync_mode = match FsyncMode::parse(
                arg("--fsync-mode").as_deref().unwrap_or("batch"),
            ) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            let options = DurabilityOptions {
                fsync_mode,
                snapshot_every_batches: arg("--snapshot-every")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(32),
                faults: resilience.as_ref().and_then(|r| r.injector().cloned()),
            };
            match DurableTable::open(table, &dir, options) {
                Ok((durable, recovery)) => {
                    eprintln!(
                        "durability: data-dir={dir} fsync={} recovered version={} rows={} \
                         (snapshot_batches={} wal_batches={} torn_truncations={} clean={} {:.1}ms)",
                        fsync_mode.name(),
                        recovery.version,
                        recovery.total_rows,
                        recovery.snapshot_batches,
                        recovery.replayed_batches,
                        recovery.torn_tail_truncations,
                        recovery.clean_start,
                        recovery.recovery_ms,
                    );
                    durable
                }
                Err(e) => {
                    eprintln!("error: recovery from {dir} failed: {e}");
                    std::process::exit(3);
                }
            }
        }
        None => DurableTable::memory(table),
    };

    let metrics = HttpMetrics::new();
    let mut state =
        AppState::durable(durable).with_http_metrics(metrics.clone()).with_session_timing(
            config.heartbeat.as_millis() as u64,
            config.session_idle_timeout.as_millis() as u64,
        );
    if let Some(threads) = arg("--threads").and_then(|v| v.parse().ok()) {
        state = state.with_threads(threads);
    }
    if let Some(ms) = arg("--utterance-deadline-ms").and_then(|v| v.parse().ok()) {
        state = state.with_utterance_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(mb) = arg("--cache-mb").and_then(|v| v.parse().ok()) {
        state = state.with_cache_mb(mb);
    }
    if let Some(resilience) = resilience {
        state = state.with_resilience(resilience);
    }
    let state = Arc::new(state);
    let state_for_shutdown = Arc::clone(&state);

    let shutdown = voxolap_server::install_shutdown_signals();
    let handle = serve_with(&format!("127.0.0.1:{port}"), config.clone(), metrics, move |req| {
        state.handle(req)
    })
    .expect("bind server port");
    eprintln!(
        "voxolap-server listening on http://{} (workers={} queue={} timeout={}ms keep_alive={} fd_limit={})",
        handle.addr,
        config.threads,
        config.queue,
        config.read_timeout.as_millis(),
        config.keep_alive,
        fd_limit,
    );

    // Serve until SIGTERM/SIGINT requests a graceful exit (or the process
    // is SIGKILLed, in which case the next boot recovers from the WAL).
    while !shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(100));
    }
    let drain =
        Duration::from_millis(arg("--shutdown-drain-ms").and_then(|v| v.parse().ok()).unwrap_or(2000));
    eprintln!("shutdown: draining in-flight requests (up to {}ms)...", drain.as_millis());
    handle.shutdown_within(drain);
    match state_for_shutdown.shutdown_durability() {
        Ok(()) => eprintln!("shutdown: WAL flushed, clean marker written"),
        Err(e) => {
            eprintln!("shutdown: WAL flush failed ({e}); next boot will scan the tail");
            std::process::exit(1);
        }
    }
}
