//! Readiness polling over raw `epoll(7)` — the substrate of the evented
//! serving layer (DESIGN.md §15).
//!
//! The workspace is dependency-free by policy (no `mio`, no `libc`
//! crate), so the three syscalls the reactor needs are declared directly
//! against the C library `std` already links. Linux-only, like the rest
//! of the serving layer's `/proc` probes; every call site funnels through
//! [`Poller`], which owns the epoll instance and an `eventfd` used to
//! interrupt a blocked `epoll_wait` from other threads (worker handoffs,
//! shutdown).
//!
//! Registration is level-triggered: the reactor re-arms interest
//! explicitly per connection phase (read vs write), which keeps the state
//! machine in `http.rs` free of edge-trigger starvation bugs at the cost
//! of one `epoll_ctl` per phase change — negligible against a planner
//! dispatch.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

// epoll_ctl ops.
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

// Event bits (uapi/linux/eventpoll.h).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `epoll_event`. The kernel ABI packs this struct on x86-64 (only).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
}

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

/// Set by the `SIGTERM`/`SIGINT` handler installed by
/// [`install_shutdown_signals`].
static SHUTDOWN_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

extern "C" fn note_shutdown(_signum: c_int) {
    // A relaxed atomic store is async-signal-safe; everything else
    // (draining, WAL flush, marker write) happens on the main thread.
    SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Install `SIGTERM`/`SIGINT` handlers that request a graceful shutdown
/// instead of killing the process outright, and return the flag the main
/// loop polls. Graceful shutdown is what lets the server drain in-flight
/// requests, flush + fsync the WAL, and write the clean-shutdown marker
/// (DESIGN.md §17) — a `SIGKILL` skips all of that and exercises the
/// recovery path instead.
pub fn install_shutdown_signals() -> &'static std::sync::atomic::AtomicBool {
    unsafe {
        signal(SIGINT, note_shutdown);
        signal(SIGTERM, note_shutdown);
    }
    &SHUTDOWN_REQUESTED
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Raise the soft `RLIMIT_NOFILE` to the hard limit and return the new
/// soft limit — thousands of concurrent sessions need thousands of file
/// descriptors, and the default soft limit is often 1024. Best-effort:
/// on failure the current soft limit is returned unchanged.
pub fn raise_nofile_limit() -> u64 {
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.cur >= lim.max {
            return lim.cur;
        }
        let raised = RLimit { cur: lim.max, max: lim.max };
        if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
            lim.max
        } else {
            lim.cur
        }
    }
}

/// Readiness interest for one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when readable (or the peer half-closed).
    Read,
    /// Wake when writable.
    Write,
    /// Wake on either direction.
    ReadWrite,
}

impl Interest {
    fn bits(self) -> u32 {
        match self {
            Interest::Read => EPOLLIN | EPOLLRDHUP,
            Interest::Write => EPOLLOUT,
            Interest::ReadWrite => EPOLLIN | EPOLLRDHUP | EPOLLOUT,
        }
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Readable (includes peer half-close, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup — the connection is (or is about to be) dead.
    pub error: bool,
}

/// Token reserved for the internal wake `eventfd`; never delivered.
const WAKE_TOKEN: u64 = u64::MAX;

/// An owned epoll instance plus a wake `eventfd`.
///
/// `wait` runs on the reactor thread; `notify` may be called from any
/// thread to interrupt a blocked `wait` (the eventfd is drained
/// internally and never surfaces as an [`Event`]).
pub struct Poller {
    epfd: RawFd,
    wakefd: RawFd,
}

// RawFds are just integers; the kernel side is thread-safe for the
// operations used here (epoll_ctl/epoll_wait may race by design, and the
// eventfd write is how cross-thread wakeups work).
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Create an epoll instance with its wake eventfd registered.
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { cvt(epoll_create1(EPOLL_CLOEXEC))? };
        let wakefd = match unsafe { cvt(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) } {
            Ok(fd) => fd,
            Err(e) => {
                unsafe { close(epfd) };
                return Err(e);
            }
        };
        let poller = Poller { epfd, wakefd };
        poller.add(wakefd, WAKE_TOKEN, Interest::Read)?;
        Ok(poller)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest.bits(), data: token };
        unsafe { cvt(epoll_ctl(self.epfd, op, fd, &mut ev)) }.map(|_| ())
    }

    /// Register `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest of an already registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Remove `fd` from the instance (safe to call on already-closed fds;
    /// errors are swallowed because closing an fd deregisters it anyway).
    pub fn remove(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        unsafe {
            let _ = epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev);
        }
    }

    /// Interrupt a blocked [`wait`](Self::wait) from another thread.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe {
            let _ = write(self.wakefd, (&one as *const u64).cast(), 8);
        }
    }

    /// Wait up to `timeout` (forever when `None`), appending readiness
    /// events into `events` (cleared first). Wakeup-eventfd events are
    /// drained and filtered out; a `notify` therefore shows up only as an
    /// early return with possibly zero events.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a sub-millisecond deadline does not spin at 0.
            Some(d) => {
                let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let r =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as c_int, timeout_ms) };
            if r >= 0 {
                break r as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            let (bits, data) = (ev.events, ev.data);
            if data == WAKE_TOKEN {
                let mut buf = 0u64;
                unsafe {
                    let _ = read(self.wakefd, (&mut buf as *mut u64).cast(), 8);
                }
                continue;
            }
            events.push(Event {
                token: data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.wakefd);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write as IoWrite};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn poller_sees_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::Read).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "no data yet: {events:?}");

        client.write_all(b"hi").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut s = server;
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn notify_interrupts_wait_without_events() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = poller.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            p2.notify();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "notify did not interrupt");
        assert!(events.is_empty(), "wake eventfd must be filtered: {events:?}");
        t.join().unwrap();
    }

    #[test]
    fn modify_switches_interest_direction() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Write interest on an idle socket: immediately writable.
        poller.add(server.as_raw_fd(), 1, Interest::Write).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable), "{events:?}");

        // Switch to read interest: silent until the peer writes.
        poller.modify(server.as_raw_fd(), 1, Interest::Read).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "{events:?}");
        client.write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable), "{events:?}");
    }

    #[test]
    fn raise_nofile_limit_reports_a_positive_limit() {
        assert!(raise_nofile_limit() > 0);
    }
}
